#pragma once

/// \file query_graph.h
/// \brief Query-graph assembly (paper §2.3).
///
/// G(q) is the Wikipedia subgraph induced by X(q) = L(q.k) ∪ A′, the main
/// articles of any redirects among them, and all their categories.  The
/// struct keeps the provenance of each node (query article vs expansion
/// article vs category) so the analysis can compute Table 3's ratios.

#include <vector>

#include "graph/subgraph.h"
#include "wiki/knowledge_base.h"

namespace wqe::groundtruth {

using graph::NodeId;

/// \brief One assembled query graph.
struct QueryGraph {
  /// Label-free CSR-native induced subgraph (local node ids) + mapping to
  /// KB node ids (`sub.to_parent`).  Structure only — analysis reads
  /// labels through the KB when it needs them.
  graph::CsrSubgraph sub;
  /// KB ids of the query articles L(q.k) included in the graph.
  std::vector<NodeId> query_articles;
  /// KB ids of the expansion articles A'.
  std::vector<NodeId> expansion_articles;

  /// \brief Local ids of the query articles (seeds for cycle search).
  std::vector<NodeId> LocalQueryArticles() const;

  size_t num_nodes() const { return sub.num_nodes(); }
};

/// \brief Builds G(q) from the knowledge base, which must be frozen (the
/// subgraph slices the `kb.csr()` snapshot).
///
/// Redirects among the inputs are resolved to their main articles (both
/// are included, mirroring the paper's construction); categories of every
/// included article are added; the subgraph is induced over the union.
QueryGraph BuildQueryGraph(const wiki::KnowledgeBase& kb,
                           const std::vector<NodeId>& query_articles,
                           const std::vector<NodeId>& expansion_articles);

}  // namespace wqe::groundtruth
