#pragma once

/// \file query_graph_analysis.h
/// \brief Per-topic structural analysis of query graphs (paper §3).
///
/// For one topic's G(q) this computes: largest-connected-component ratios
/// (Table 3 inputs), triangle participation, and the full set of cycles of
/// length 2–5 touching a query article, each with its structural metrics
/// and its *contribution* — the change of O (Equation 1) when the cycle's
/// articles are added to the query, in percentage points (Figure 5/9
/// inputs; the paper's "percentual difference" read as points keeps
/// topics with different baselines comparable).

#include <array>
#include <vector>

#include "common/result.h"
#include "graph/connected_components.h"
#include "graph/cycle_metrics.h"
#include "graph/cycles.h"
#include "graph/triangles.h"
#include "groundtruth/ground_truth.h"
#include "groundtruth/pipeline.h"

namespace wqe::analysis {

using graph::NodeId;

/// \brief Smallest/largest cycle length analyzed (paper bound).
inline constexpr uint32_t kMinCycleLength = 2;
inline constexpr uint32_t kMaxCycleLength = 5;

/// \brief Largest-connected-component measurements (one Table 3 row set).
struct ComponentStats {
  double relative_size = 0.0;     ///< |CC| / |G(q)|
  double query_node_ratio = 0.0;  ///< fraction of L(q.k) inside the CC
  double article_ratio = 0.0;     ///< articles / |CC|
  double category_ratio = 0.0;    ///< categories / |CC|
  double expansion_ratio = 0.0;   ///< |A' ∩ CC| / |L(q.k) ∩ CC| (0: no query node)
  double tpr = 0.0;               ///< triangle participation ratio of the CC
  size_t graph_size = 0;          ///< |G(q)|
  size_t num_components = 0;
};

/// \brief One analyzed cycle.
struct CycleRecord {
  graph::Cycle cycle;             ///< KB node ids
  graph::CycleMetrics metrics;
  double contribution = 0.0;      ///< % change of O when added to L(q.k)
};

/// \brief Analysis output for one topic.
struct TopicAnalysis {
  size_t topic_index = 0;
  ComponentStats component;
  std::vector<CycleRecord> cycles;
  double baseline_quality = 0.0;  ///< O(L(q.k), D)

  /// KB article ids found in cycles, bucketed by cycle length (index 0
  /// unused; lengths 2..5).
  std::array<std::vector<NodeId>, kMaxCycleLength + 1> articles_by_length;

  /// \brief Cycles of one length.
  size_t CountCycles(uint32_t length) const;
};

/// \brief Analyzer options.
struct AnalyzerOptions {
  /// Contribution is expensive (one retrieval per distinct article set);
  /// cap the number of cycles scored per topic (0 = unlimited). Cycle
  /// *counts* (Fig 6) always use the full enumeration.
  size_t max_scored_cycles = 4000;
};

/// \brief Per-topic analyzer bound to a pipeline + ground truth.
class QueryGraphAnalyzer {
 public:
  QueryGraphAnalyzer(const groundtruth::Pipeline* pipeline,
                     const groundtruth::GroundTruth* gt,
                     AnalyzerOptions options = {})
      : pipeline_(pipeline), gt_(gt), options_(options) {}

  /// \brief Full analysis of one topic.
  Result<TopicAnalysis> Analyze(size_t topic_index) const;

  /// \brief Analyses for all topics.
  Result<std::vector<TopicAnalysis>> AnalyzeAll() const;

 private:
  const groundtruth::Pipeline* pipeline_;
  const groundtruth::GroundTruth* gt_;
  AnalyzerOptions options_;
};

}  // namespace wqe::analysis
