#pragma once

/// \file query_graph_analysis.h
/// \brief Per-topic structural analysis of query graphs (paper §3).
///
/// For one topic's G(q) this computes: largest-connected-component ratios
/// (Table 3 inputs), triangle participation, and the full set of cycles of
/// length 2–5 touching a query article, each with its structural metrics
/// and its *contribution* — the change of O (Equation 1) when the cycle's
/// articles are added to the query, in percentage points (Figure 5/9
/// inputs; the paper's "percentual difference" read as points keeps
/// topics with different baselines comparable).

#include <array>
#include <vector>

#include "common/result.h"
#include "graph/connected_components.h"
#include "graph/cycle_metrics.h"
#include "graph/cycles.h"
#include "graph/triangles.h"
#include "groundtruth/ground_truth.h"
#include "groundtruth/pipeline.h"

namespace wqe::analysis {

using graph::NodeId;

/// \brief Smallest/largest cycle length analyzed (paper bound).
inline constexpr uint32_t kMinCycleLength = 2;
inline constexpr uint32_t kMaxCycleLength = 5;

/// \brief Largest-connected-component measurements (one Table 3 row set).
struct ComponentStats {
  double relative_size = 0.0;     ///< |CC| / |G(q)|
  double query_node_ratio = 0.0;  ///< fraction of L(q.k) inside the CC
  double article_ratio = 0.0;     ///< articles / |CC|
  double category_ratio = 0.0;    ///< categories / |CC|
  double expansion_ratio = 0.0;   ///< |A' ∩ CC| / |L(q.k) ∩ CC| (0: no query node)
  double tpr = 0.0;               ///< triangle participation ratio of the CC
  size_t graph_size = 0;          ///< |G(q)|
  size_t num_components = 0;
};

/// \brief One analyzed cycle.
struct CycleRecord {
  graph::Cycle cycle;             ///< KB node ids
  graph::CycleMetrics metrics;
  double contribution = 0.0;      ///< % change of O when added to L(q.k)
};

/// \brief Analysis output for one topic.
struct TopicAnalysis {
  size_t topic_index = 0;
  ComponentStats component;
  std::vector<CycleRecord> cycles;
  double baseline_quality = 0.0;  ///< O(L(q.k), D)

  /// KB article ids found in cycles, bucketed by cycle length (index 0
  /// unused; lengths 2..5).
  std::array<std::vector<NodeId>, kMaxCycleLength + 1> articles_by_length;

  /// \brief Cycles of one length.
  size_t CountCycles(uint32_t length) const;
};

/// \brief Analyzer options.
struct AnalyzerOptions {
  /// Contribution is expensive (one retrieval per distinct article set);
  /// cap the number of cycles scored per topic (0 = unlimited). Cycle
  /// *counts* (Fig 6) always use the full enumeration.
  size_t max_scored_cycles = 4000;

  /// Analysis threads: 1 = sequential, 0 (default) = inherit the
  /// pipeline's `num_threads` knob.  `AnalyzeAll` fans topics across the
  /// pool; a direct `Analyze` call parallelizes *within* the topic ball
  /// (cycle enumeration + metrics).  The two never nest: the fan-out
  /// hands every participant — pool workers and the calling thread —
  /// sequential in-ball settings, so topic work neither deadlocks on
  /// pool capacity nor queues sub-tasks behind whole topics.
  uint32_t num_threads = 0;
  /// Pool to run on (borrowed); null inherits the pipeline's pool, and a
  /// transient pool is spawned when neither exists.
  serve::ThreadPool* pool = nullptr;
  /// Ball-prune each topic's view before enumerating (graph/ball_prune.h;
  /// output is bit-identical either way).  ANDed with the pipeline's own
  /// knob: disabling at either layer disables.
  bool prune_ball = true;
};

/// \brief Per-topic analyzer bound to a pipeline + ground truth.
/// Analysis calls are const and thread-safe (the pipeline is immutable
/// after Build).
class QueryGraphAnalyzer {
 public:
  QueryGraphAnalyzer(const groundtruth::Pipeline* pipeline,
                     const groundtruth::GroundTruth* gt,
                     AnalyzerOptions options = {});

  /// \brief Full analysis of one topic.
  Result<TopicAnalysis> Analyze(size_t topic_index) const;

  /// \brief Analyses for all topics.  With `num_threads != 1` topics run
  /// in parallel; output is element-wise identical to the sequential run
  /// (each topic's analysis is a pure function of the immutable
  /// pipeline), and on failure the lowest failing topic index reports —
  /// the same error a sequential run would surface first.
  Result<std::vector<TopicAnalysis>> AnalyzeAll() const;

 private:
  /// One topic with an explicit in-ball parallelism setting: `Analyze`
  /// passes the configured knobs, the `AnalyzeAll` fan-out passes
  /// (1, nullptr) so every participant — pool workers *and* the calling
  /// thread — analyzes its topics sequentially instead of contending for
  /// the pool the fan-out itself saturates.
  Result<TopicAnalysis> AnalyzeImpl(size_t topic_index, uint32_t num_threads,
                                    serve::ThreadPool* pool) const;

  const groundtruth::Pipeline* pipeline_;
  const groundtruth::GroundTruth* gt_;
  AnalyzerOptions options_;
};

}  // namespace wqe::analysis
