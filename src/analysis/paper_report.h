#pragma once

/// \file paper_report.h
/// \brief Aggregations reproducing every table and figure of the paper.
///
/// Each `ComputeX` maps per-topic analyses (and, where retrieval is
/// involved, the pipeline) to exactly the numbers the paper reports:
/// Table 2 (ground-truth precision stats), Table 3 (largest-CC stats),
/// Table 4 (precision by cycle-length configuration), Figure 5
/// (contribution vs length), Figure 6 (cycle counts vs length), Figures
/// 7a/7b (category ratio and extra-edge density vs length), Figure 9
/// (density vs contribution), and the §3 scalars (TPR, reciprocal-pair
/// rate, average graph size).

#include <array>
#include <vector>

#include "analysis/query_graph_analysis.h"
#include "common/stats.h"

namespace wqe::analysis {

/// \brief Table 2: five-number summary of P@r over all topics.
struct Table2Row {
  size_t cutoff = 0;
  FiveNumberSummary summary;
};
std::vector<Table2Row> ComputeTable2(const groundtruth::GroundTruth& gt);

/// \brief Table 3: five-number summaries of the largest-CC ratios.
struct Table3Report {
  FiveNumberSummary relative_size;
  FiveNumberSummary query_node_ratio;
  FiveNumberSummary article_ratio;
  FiveNumberSummary category_ratio;
  FiveNumberSummary expansion_ratio;
};
Table3Report ComputeTable3(const std::vector<TopicAnalysis>& analyses);

/// \brief Table 4: average P@{1,5,10,15} when the expansion features are
/// the articles found in cycles of the given length set.
struct Table4Row {
  std::vector<uint32_t> lengths;          ///< e.g. {2,3}
  std::array<double, 4> precision{};      ///< P@1, P@5, P@10, P@15
};

/// \brief The paper's seven configurations: {2},{3},{4},{5},{2,3},
/// {2,3,4},{2,3,4,5}.
const std::vector<std::vector<uint32_t>>& Table4Configurations();

Result<std::vector<Table4Row>> ComputeTable4(
    const groundtruth::Pipeline& pipeline,
    const groundtruth::GroundTruth& gt,
    const std::vector<TopicAnalysis>& analyses);

/// \brief A per-cycle-length series (Figures 5, 6, 7a, 7b).
struct LengthSeries {
  std::vector<uint32_t> lengths;
  std::vector<double> values;
};

/// \brief Figure 5: average contribution (%) per cycle length.
LengthSeries ComputeFig5(const std::vector<TopicAnalysis>& analyses);

/// \brief Figure 6: average number of cycles per length (per topic).
LengthSeries ComputeFig6(const std::vector<TopicAnalysis>& analyses);

/// \brief Figure 7a: average category ratio per length (3–5).
LengthSeries ComputeFig7a(const std::vector<TopicAnalysis>& analyses);

/// \brief Figure 7b: average extra-edge density per length (3–5).
LengthSeries ComputeFig7b(const std::vector<TopicAnalysis>& analyses);

/// \brief Figure 9: extra-edge density vs average contribution.
struct Fig9Report {
  std::vector<double> bin_centers;
  std::vector<double> mean_contribution;  ///< NaN-free; empty bins skipped
  std::vector<size_t> bin_counts;
  LinearFit trend;                        ///< fit over raw (density, contribution)
  size_t num_cycles = 0;
};
Fig9Report ComputeFig9(const std::vector<TopicAnalysis>& analyses,
                       size_t num_bins = 10);

/// \brief §4 open problem: "We have not analysed how the frequency of a
/// given article in the cycles and the goodness of its title as expansion
/// feature are correlated ... Such correlation, if existing, could be
/// exploited."  This computes it: for every non-query article of every
/// query graph, its cycle frequency vs the contribution (percentage
/// points of O) of adding that article alone.
struct ArticleFrequencyReport {
  double pearson = 0.0;          ///< correlation over all (freq, gain) pairs
  LinearFit trend;               ///< gain as a linear function of frequency
  size_t num_articles = 0;
  /// Mean solo gain of articles appearing in >= median frequency vs below.
  double mean_gain_frequent = 0.0;
  double mean_gain_rare = 0.0;
};

Result<ArticleFrequencyReport> ComputeArticleFrequencyCorrelation(
    const groundtruth::Pipeline& pipeline,
    const groundtruth::GroundTruth& gt,
    const std::vector<TopicAnalysis>& analyses);

/// \brief §3 scalars.
struct MiscScalars {
  double mean_largest_cc_tpr = 0.0;   ///< paper: ≈ 0.3
  double reciprocal_link_rate = 0.0;  ///< paper: 0.1147
  double mean_graph_size = 0.0;       ///< paper: 208.22 nodes
};
MiscScalars ComputeMiscScalars(const groundtruth::Pipeline& pipeline,
                               const std::vector<TopicAnalysis>& analyses);

}  // namespace wqe::analysis
