#include "analysis/paper_report.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "common/macros.h"
#include "graph/cycle_metrics.h"
#include "groundtruth/xq_optimizer.h"
#include "ir/eval.h"

namespace wqe::analysis {

std::vector<Table2Row> ComputeTable2(const groundtruth::GroundTruth& gt) {
  const std::vector<size_t>& cutoffs = ir::PaperRankCutoffs();
  std::vector<Table2Row> rows;
  for (size_t c = 0; c < cutoffs.size(); ++c) {
    std::vector<double> values;
    for (const groundtruth::GroundTruthEntry& e : gt.entries) {
      if (c < e.precision_at.size()) values.push_back(e.precision_at[c]);
    }
    Table2Row row;
    row.cutoff = cutoffs[c];
    row.summary = Summarize(std::move(values));
    rows.push_back(std::move(row));
  }
  return rows;
}

Table3Report ComputeTable3(const std::vector<TopicAnalysis>& analyses) {
  std::vector<double> size, query_nodes, articles, categories, expansion;
  for (const TopicAnalysis& a : analyses) {
    size.push_back(a.component.relative_size);
    query_nodes.push_back(a.component.query_node_ratio);
    articles.push_back(a.component.article_ratio);
    categories.push_back(a.component.category_ratio);
    expansion.push_back(a.component.expansion_ratio);
  }
  Table3Report report;
  report.relative_size = Summarize(std::move(size));
  report.query_node_ratio = Summarize(std::move(query_nodes));
  report.article_ratio = Summarize(std::move(articles));
  report.category_ratio = Summarize(std::move(categories));
  report.expansion_ratio = Summarize(std::move(expansion));
  return report;
}

const std::vector<std::vector<uint32_t>>& Table4Configurations() {
  static const std::vector<std::vector<uint32_t>>* kConfigs =
      new std::vector<std::vector<uint32_t>>{
          {2}, {3}, {4}, {5}, {2, 3}, {2, 3, 4}, {2, 3, 4, 5}};
  return *kConfigs;
}

Result<std::vector<Table4Row>> ComputeTable4(
    const groundtruth::Pipeline& pipeline,
    const groundtruth::GroundTruth& gt,
    const std::vector<TopicAnalysis>& analyses) {
  const std::vector<size_t>& cutoffs = ir::PaperRankCutoffs();
  std::vector<Table4Row> rows;

  for (const std::vector<uint32_t>& config : Table4Configurations()) {
    Table4Row row;
    row.lengths = config;
    std::array<double, 4> sums{};
    size_t counted = 0;

    for (size_t t = 0; t < analyses.size(); ++t) {
      const TopicAnalysis& a = analyses[t];
      const groundtruth::GroundTruthEntry& entry = gt.entries[t];

      // Expansion features: articles inside cycles of the configured
      // lengths (query articles excluded from the feature list, then the
      // query itself is always part of the issued query).
      std::unordered_set<graph::NodeId> feature_set;
      for (uint32_t len : config) {
        for (graph::NodeId article : a.articles_by_length[len]) {
          feature_set.insert(article);
        }
      }
      std::vector<std::string> titles;
      for (graph::NodeId q : entry.query_articles) {
        titles.push_back(pipeline.kb().display_title(q));
        feature_set.erase(q);
      }
      for (graph::NodeId f : feature_set) {
        titles.push_back(pipeline.kb().display_title(f));
      }
      if (titles.empty()) continue;

      auto results = pipeline.engine().SearchTitles(titles, 15);
      if (!results.ok()) {
        if (results.status().IsInvalidArgument()) continue;
        return results.status();
      }
      for (size_t c = 0; c < cutoffs.size(); ++c) {
        sums[c] += ir::PrecisionAtR(*results, pipeline.relevant(t),
                                    cutoffs[c]);
      }
      ++counted;
    }
    for (size_t c = 0; c < cutoffs.size(); ++c) {
      row.precision[c] =
          counted == 0 ? 0.0 : sums[c] / static_cast<double>(counted);
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

namespace {

/// Per-length mean of a per-cycle quantity, averaged per topic first
/// (every topic weighs equally, as in the paper's "average" figures).
LengthSeries PerLengthTopicMean(
    const std::vector<TopicAnalysis>& analyses, uint32_t min_length,
    double (*extract)(const CycleRecord&),
    bool (*include)(const CycleRecord&)) {
  LengthSeries series;
  for (uint32_t len = min_length; len <= kMaxCycleLength; ++len) {
    std::vector<double> topic_means;
    for (const TopicAnalysis& a : analyses) {
      double sum = 0.0;
      size_t n = 0;
      for (const CycleRecord& r : a.cycles) {
        if (r.cycle.length() != len || !include(r)) continue;
        sum += extract(r);
        ++n;
      }
      if (n > 0) topic_means.push_back(sum / static_cast<double>(n));
    }
    series.lengths.push_back(len);
    series.values.push_back(Mean(topic_means));
  }
  return series;
}

bool IncludeAlways(const CycleRecord&) { return true; }

}  // namespace

LengthSeries ComputeFig5(const std::vector<TopicAnalysis>& analyses) {
  return PerLengthTopicMean(
      analyses, kMinCycleLength,
      [](const CycleRecord& r) { return r.contribution; }, IncludeAlways);
}

LengthSeries ComputeFig6(const std::vector<TopicAnalysis>& analyses) {
  LengthSeries series;
  for (uint32_t len = kMinCycleLength; len <= kMaxCycleLength; ++len) {
    double sum = 0.0;
    for (const TopicAnalysis& a : analyses) {
      sum += static_cast<double>(a.CountCycles(len));
    }
    series.lengths.push_back(len);
    series.values.push_back(
        analyses.empty() ? 0.0 : sum / static_cast<double>(analyses.size()));
  }
  return series;
}

LengthSeries ComputeFig7a(const std::vector<TopicAnalysis>& analyses) {
  return PerLengthTopicMean(
      analyses, 3,
      [](const CycleRecord& r) { return r.metrics.category_ratio; },
      IncludeAlways);
}

LengthSeries ComputeFig7b(const std::vector<TopicAnalysis>& analyses) {
  return PerLengthTopicMean(
      analyses, 3,
      [](const CycleRecord& r) { return r.metrics.extra_edge_density; },
      IncludeAlways);
}

Fig9Report ComputeFig9(const std::vector<TopicAnalysis>& analyses,
                       size_t num_bins) {
  Fig9Report report;
  std::vector<double> densities, contributions;
  for (const TopicAnalysis& a : analyses) {
    for (const CycleRecord& r : a.cycles) {
      // Density is only defined for cycles that can hold extra edges.
      if (r.metrics.max_edges <= r.metrics.length) continue;
      densities.push_back(r.metrics.extra_edge_density);
      contributions.push_back(r.contribution);
    }
  }
  report.num_cycles = densities.size();
  if (densities.size() >= 2) {
    report.trend = FitLine(densities, contributions);
  }
  if (num_bins == 0) num_bins = 1;
  std::vector<double> bin_sum(num_bins, 0.0);
  std::vector<size_t> bin_n(num_bins, 0);
  for (size_t i = 0; i < densities.size(); ++i) {
    size_t b = std::min(num_bins - 1,
                        static_cast<size_t>(densities[i] *
                                            static_cast<double>(num_bins)));
    bin_sum[b] += contributions[i];
    ++bin_n[b];
  }
  for (size_t b = 0; b < num_bins; ++b) {
    if (bin_n[b] == 0) continue;
    report.bin_centers.push_back(
        (static_cast<double>(b) + 0.5) / static_cast<double>(num_bins));
    report.mean_contribution.push_back(bin_sum[b] /
                                       static_cast<double>(bin_n[b]));
    report.bin_counts.push_back(bin_n[b]);
  }
  return report;
}

Result<ArticleFrequencyReport> ComputeArticleFrequencyCorrelation(
    const groundtruth::Pipeline& pipeline,
    const groundtruth::GroundTruth& gt,
    const std::vector<TopicAnalysis>& analyses) {
  groundtruth::XqOptimizer evaluator(&pipeline.engine(), &pipeline.kb());
  std::vector<double> freqs, gains;

  for (size_t t = 0; t < analyses.size(); ++t) {
    const TopicAnalysis& a = analyses[t];
    const groundtruth::GroundTruthEntry& entry = gt.entries[t];
    const size_t track_index = entry.topic_index;

    // Cycle frequency of every non-query article.
    std::unordered_map<graph::NodeId, uint32_t> frequency;
    for (const CycleRecord& r : a.cycles) {
      for (graph::NodeId n : r.cycle.nodes) {
        if (!pipeline.kb().graph().IsArticle(n)) continue;
        if (std::find(entry.query_articles.begin(),
                      entry.query_articles.end(),
                      n) != entry.query_articles.end()) {
          continue;
        }
        ++frequency[n];
      }
    }
    if (frequency.empty()) continue;

    WQE_ASSIGN_OR_RETURN(
        double baseline,
        evaluator.EvaluateArticles(entry.query_articles,
                                   pipeline.relevant(track_index)));
    for (const auto& [article, freq] : frequency) {
      std::vector<graph::NodeId> with_article = entry.query_articles;
      with_article.push_back(article);
      WQE_ASSIGN_OR_RETURN(
          double quality,
          evaluator.EvaluateArticles(with_article,
                                     pipeline.relevant(track_index)));
      freqs.push_back(static_cast<double>(freq));
      gains.push_back(100.0 * (quality - baseline));
    }
  }

  ArticleFrequencyReport report;
  report.num_articles = freqs.size();
  if (freqs.size() >= 2) {
    report.pearson = PearsonCorrelation(freqs, gains);
    report.trend = FitLine(freqs, gains);
    std::vector<double> sorted = freqs;
    std::sort(sorted.begin(), sorted.end());
    double median = PercentileSorted(sorted, 0.5);
    double sum_hi = 0, sum_lo = 0;
    size_t n_hi = 0, n_lo = 0;
    for (size_t i = 0; i < freqs.size(); ++i) {
      if (freqs[i] >= median) {
        sum_hi += gains[i];
        ++n_hi;
      } else {
        sum_lo += gains[i];
        ++n_lo;
      }
    }
    if (n_hi > 0) report.mean_gain_frequent = sum_hi / n_hi;
    if (n_lo > 0) report.mean_gain_rare = sum_lo / n_lo;
  }
  return report;
}

MiscScalars ComputeMiscScalars(const groundtruth::Pipeline& pipeline,
                               const std::vector<TopicAnalysis>& analyses) {
  MiscScalars scalars;
  std::vector<double> tprs, sizes;
  for (const TopicAnalysis& a : analyses) {
    tprs.push_back(a.component.tpr);
    sizes.push_back(static_cast<double>(a.component.graph_size));
  }
  scalars.mean_largest_cc_tpr = Mean(tprs);
  scalars.mean_graph_size = Mean(sizes);
  scalars.reciprocal_link_rate =
      graph::ReciprocalLinkRate(pipeline.kb().csr());
  return scalars;
}

}  // namespace wqe::analysis
