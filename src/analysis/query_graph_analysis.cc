#include "analysis/query_graph_analysis.h"

#include <algorithm>
#include <atomic>
#include <unordered_map>
#include <unordered_set>

#include "common/macros.h"
#include "groundtruth/xq_optimizer.h"
#include "serve/thread_pool.h"

namespace wqe::analysis {

size_t TopicAnalysis::CountCycles(uint32_t length) const {
  size_t n = 0;
  for (const CycleRecord& r : cycles) {
    if (r.cycle.length() == length) ++n;
  }
  return n;
}

QueryGraphAnalyzer::QueryGraphAnalyzer(const groundtruth::Pipeline* pipeline,
                                       const groundtruth::GroundTruth* gt,
                                       AnalyzerOptions options)
    : pipeline_(pipeline), gt_(gt), options_(options) {
  // 0 = inherit: the pipeline is the fixture that knows how much hardware
  // the experiment may use; explicit analyzer options always win.
  if (options_.num_threads == 0) {
    options_.num_threads = pipeline_->num_threads();
  }
  if (options_.pool == nullptr) options_.pool = pipeline_->pool();
  options_.prune_ball = options_.prune_ball && pipeline_->prune_ball();
}

Result<TopicAnalysis> QueryGraphAnalyzer::Analyze(size_t topic_index) const {
  return AnalyzeImpl(topic_index, options_.num_threads, options_.pool);
}

Result<TopicAnalysis> QueryGraphAnalyzer::AnalyzeImpl(
    size_t topic_index, uint32_t num_threads, serve::ThreadPool* pool) const {
  if (topic_index >= gt_->entries.size()) {
    return Status::OutOfRange("topic index ", topic_index, " out of range");
  }
  const groundtruth::GroundTruthEntry& entry = gt_->entries[topic_index];
  // Qrels are looked up by the entry's own track index, which may differ
  // from its position in this (possibly partial) ground truth.
  const size_t track_index = entry.topic_index;
  const groundtruth::QueryGraph& qg = entry.graph;
  // The query graph's structure is analyzed as an induced slice of the
  // KB's frozen snapshot — no per-topic adjacency re-materialization; the
  // view's locals map straight back to KB node ids.
  const graph::CsrGraph& csr = pipeline_->kb().csr();
  graph::UndirectedView view(csr, qg.sub.to_parent);

  TopicAnalysis out;
  out.topic_index = topic_index;

  // --- Largest connected component (Table 3). ---
  graph::ComponentsResult comps = graph::ConnectedComponents(view);
  out.component.graph_size = view.num_nodes();
  out.component.num_components = comps.num_components();
  if (view.num_nodes() > 0 && comps.num_components() > 0) {
    std::vector<uint32_t> cc = comps.LargestComponent();
    std::unordered_set<uint32_t> cc_set(cc.begin(), cc.end());
    out.component.relative_size = static_cast<double>(cc.size()) /
                                  static_cast<double>(view.num_nodes());

    size_t articles = 0, categories = 0;
    for (uint32_t local : cc) {
      if (view.kind(local) == graph::NodeKind::kArticle) {
        ++articles;
      } else {
        ++categories;
      }
    }
    out.component.article_ratio =
        static_cast<double>(articles) / static_cast<double>(cc.size());
    out.component.category_ratio =
        static_cast<double>(categories) / static_cast<double>(cc.size());

    size_t query_in_cc = 0;
    for (NodeId q : qg.query_articles) {
      uint32_t local = view.ToLocal(q);
      if (local != UINT32_MAX && cc_set.count(local)) ++query_in_cc;
    }
    out.component.query_node_ratio =
        qg.query_articles.empty()
            ? 0.0
            : static_cast<double>(query_in_cc) /
                  static_cast<double>(qg.query_articles.size());

    size_t expansion_in_cc = 0;
    for (NodeId a : qg.expansion_articles) {
      uint32_t local = view.ToLocal(a);
      if (local != UINT32_MAX && cc_set.count(local)) ++expansion_in_cc;
    }
    out.component.expansion_ratio =
        query_in_cc == 0 ? 0.0
                         : static_cast<double>(expansion_in_cc) /
                               static_cast<double>(query_in_cc);
    out.component.tpr = graph::TriangleParticipationRatio(view, cc);
  }

  // --- Cycles touching a query article. ---
  // Large topic balls parallelize the enumeration and the per-cycle
  // metrics (direct Analyze calls only: the AnalyzeAll fan-out hands
  // every participant num_threads = 1 here, and pool workers degrade
  // defensively anyway).
  graph::CycleEnumerationOptions cycle_options;
  cycle_options.min_length = kMinCycleLength;
  cycle_options.max_length = kMaxCycleLength;
  cycle_options.seeds = qg.query_articles;
  cycle_options.num_threads = num_threads;
  cycle_options.pool = pool;
  cycle_options.prune_ball = options_.prune_ball;
  graph::CycleEnumerator enumerator(view);
  std::vector<graph::Cycle> cycles = enumerator.Enumerate(cycle_options);
  std::vector<graph::CycleMetrics> metrics =
      graph::ComputeCycleMetricsBatch(csr, cycles, num_threads, pool);

  // Contribution: O(L(q.k) ∪ articles(C)) vs O(L(q.k)); categories in C are
  // ignored (paper footnote 3). Memoized by article set.
  groundtruth::XqOptimizer evaluator(&pipeline_->engine(), &pipeline_->kb());
  WQE_ASSIGN_OR_RETURN(
      out.baseline_quality,
      evaluator.EvaluateArticles(entry.query_articles,
                                 pipeline_->relevant(track_index)));

  std::unordered_map<std::string, double> memo;
  size_t scored = 0;
  for (size_t ci = 0; ci < cycles.size(); ++ci) {
    graph::Cycle& cycle = cycles[ci];
    CycleRecord record;
    // The view's globals are KB node ids already.
    record.metrics = metrics[ci];

    // Articles of this cycle (KB ids), for Table 4's length buckets.
    std::vector<NodeId> cycle_articles;
    bool introduces_feature = false;
    for (NodeId n : cycle.nodes) {
      if (!csr.IsArticle(n)) continue;
      cycle_articles.push_back(n);
      if (std::find(entry.query_articles.begin(), entry.query_articles.end(),
                    n) == entry.query_articles.end()) {
        introduces_feature = true;
      }
    }
    // Cycles whose articles are all query articles introduce no expansion
    // feature; they say nothing about feature quality, so they are
    // excluded from the records (their "contribution" is 0 by definition).
    if (!introduces_feature) continue;
    auto& bucket = out.articles_by_length[cycle.length()];
    for (NodeId a : cycle_articles) {
      if (std::find(bucket.begin(), bucket.end(), a) == bucket.end()) {
        bucket.push_back(a);
      }
    }

    bool score_this = options_.max_scored_cycles == 0 ||
                      scored < options_.max_scored_cycles;
    if (score_this) {
      ++scored;
      std::vector<NodeId> with_cycle = entry.query_articles;
      for (NodeId a : cycle_articles) {
        if (std::find(entry.query_articles.begin(),
                      entry.query_articles.end(),
                      a) == entry.query_articles.end()) {
          with_cycle.push_back(a);
        }
      }
      std::sort(with_cycle.begin() + static_cast<ptrdiff_t>(
                                         entry.query_articles.size()),
                with_cycle.end());
      std::string key;
      for (NodeId n : with_cycle) {
        key += std::to_string(n);
        key += ",";
      }
      auto it = memo.find(key);
      double quality;
      if (it != memo.end()) {
        quality = it->second;
      } else {
        WQE_ASSIGN_OR_RETURN(
            quality, evaluator.EvaluateArticles(
                         with_cycle, pipeline_->relevant(track_index)));
        memo.emplace(std::move(key), quality);
      }
      // "Percentual difference" interpreted as percentage points of O
      // (bounded in [-100, 100]); the relative reading explodes for
      // near-zero baselines and makes topics incomparable.
      record.contribution = 100.0 * (quality - out.baseline_quality);
    }
    record.cycle = std::move(cycle);
    out.cycles.push_back(std::move(record));
  }
  return out;
}

Result<std::vector<TopicAnalysis>> QueryGraphAnalyzer::AnalyzeAll() const {
  const size_t num_topics = gt_->entries.size();
  const uint32_t threads =
      serve::EffectiveParallelism(options_.num_threads, options_.pool);
  if (threads <= 1 || num_topics < 2) {
    std::vector<TopicAnalysis> out;
    out.reserve(num_topics);
    for (size_t t = 0; t < num_topics; ++t) {
      WQE_ASSIGN_OR_RETURN(TopicAnalysis a, Analyze(t));
      out.push_back(std::move(a));
    }
    return out;
  }

  // Fan topics across the pool (atomic-cursor stealing: topic cost is
  // wildly skewed by ball size).  Every participant — including this
  // thread — analyzes its topics with in-ball parallelism off: the pool
  // is already saturated with topic work, so nesting would only queue
  // sub-tasks behind whole topics (or spawn transient pools per topic).
  // Results land in topic order; errors are all collected and the lowest
  // failing index reports, matching the first error a sequential run
  // would return.
  std::vector<Result<TopicAnalysis>> results(
      num_topics, Result<TopicAnalysis>(TopicAnalysis{}));
  std::atomic<size_t> cursor{0};
  serve::RunParallel(options_.pool,
                     std::min<size_t>(threads - 1, num_topics - 1), [&] {
                       for (;;) {
                         const size_t t =
                             cursor.fetch_add(1, std::memory_order_relaxed);
                         if (t >= num_topics) return;
                         results[t] = AnalyzeImpl(t, 1, nullptr);
                       }
                     });

  std::vector<TopicAnalysis> out;
  out.reserve(num_topics);
  for (size_t t = 0; t < num_topics; ++t) {
    if (!results[t].ok()) return results[t].status();
    out.push_back(std::move(*results[t]));
  }
  return out;
}

}  // namespace wqe::analysis
