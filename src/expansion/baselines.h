#pragma once

/// \file baselines.h
/// \brief Baseline expansion systems the paper compares against.
///
///  - `NoExpansion`: the unexpanded keyword query (the implicit baseline of
///    every contribution measurement).
///  - `DirectLinkExpansion`: expansion by the individual links of each
///    query article "without going deeper into further relationships" —
///    the strategy of the paper's refs [1, 2, 3].
///  - `CommunityExpansion`: triangle-based community expansion in the
///    spirit of ref [4] (WCC-style): features are articles closing
///    triangles with the query articles, ranked by triangle support —
///    "assuming that a structure as simple as a transitive relation is
///    sufficient".

#include "expansion/expander.h"

namespace wqe::expansion {

/// \brief Identity system: no features.
class NoExpansion : public Expander {
 public:
  using Expander::Expander;
  const char* name() const override { return "no-expansion"; }

 protected:
  Result<std::vector<NodeId>> SelectFeatures(
      const std::vector<NodeId>& query_articles) const override;
};

/// \brief Direct-link options.
struct DirectLinkOptions {
  size_t max_features = 10;
  /// Prefer reciprocally-linked neighbors before one-directional ones.
  /// Off by default: the refs [1-3] strategy uses links indiscriminately;
  /// turning this on borrows the paper's length-2-cycle insight.
  bool prioritize_mutual = false;
};

/// \brief Per-article link expansion (refs [1–3]).
class DirectLinkExpansion : public Expander {
 public:
  DirectLinkExpansion(const wiki::KnowledgeBase& kb,
                      const linking::EntityLinker& linker,
                      DirectLinkOptions options = {})
      : Expander(kb, linker), options_(options) {}
  const char* name() const override {
    return options_.prioritize_mutual ? "direct-link+mutual" : "direct-link";
  }

 protected:
  Result<std::vector<NodeId>> SelectFeatures(
      const std::vector<NodeId>& query_articles) const override;

 private:
  DirectLinkOptions options_;
};

/// \brief Community options.
struct CommunityOptions {
  size_t max_features = 10;
  uint32_t neighborhood_radius = 1;
  size_t max_neighborhood = 300;
};

/// \brief Triangle/community expansion (ref [4] style).
class CommunityExpansion : public Expander {
 public:
  CommunityExpansion(const wiki::KnowledgeBase& kb,
                     const linking::EntityLinker& linker,
                     CommunityOptions options = {})
      : Expander(kb, linker), options_(options) {}
  const char* name() const override { return "community"; }

 protected:
  Result<std::vector<NodeId>> SelectFeatures(
      const std::vector<NodeId>& query_articles) const override;

 private:
  CommunityOptions options_;
};

}  // namespace wqe::expansion
