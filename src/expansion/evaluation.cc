#include "expansion/evaluation.h"

#include "common/macros.h"
#include "ir/eval.h"

namespace wqe::expansion {

Result<SystemEvaluation> EvaluateExpander(
    const Expander& expander, const groundtruth::Pipeline& pipeline) {
  SystemEvaluation eval;
  eval.name = expander.name();
  const std::vector<size_t>& cutoffs = ir::PaperRankCutoffs();
  std::array<double, 4> sums{};
  double o_sum = 0.0;
  double feature_sum = 0.0;

  for (size_t t = 0; t < pipeline.num_topics(); ++t) {
    WQE_ASSIGN_OR_RETURN(ExpandedQuery expanded,
                         expander.Expand(pipeline.topic(t).keywords));
    auto results = pipeline.engine().Search(expanded.query, 15);
    if (!results.ok()) {
      if (results.status().IsInvalidArgument()) continue;  // nothing linked
      return results.status();
    }
    for (size_t c = 0; c < cutoffs.size(); ++c) {
      sums[c] +=
          ir::PrecisionAtR(*results, pipeline.relevant(t), cutoffs[c]);
    }
    o_sum += ir::AverageTopRPrecision(*results, pipeline.relevant(t));
    feature_sum += static_cast<double>(expanded.feature_articles.size());
    ++eval.topics;
  }
  if (eval.topics > 0) {
    for (size_t c = 0; c < cutoffs.size(); ++c) {
      eval.mean_precision[c] = sums[c] / static_cast<double>(eval.topics);
    }
    eval.mean_o = o_sum / static_cast<double>(eval.topics);
    eval.mean_features = feature_sum / static_cast<double>(eval.topics);
  }
  return eval;
}

}  // namespace wqe::expansion
