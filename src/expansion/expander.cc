#include "expansion/expander.h"

#include "common/macros.h"
#include "common/string_util.h"

namespace wqe::expansion {

Result<ExpandedQuery> Expander::Expand(std::string_view keywords) const {
  ExpandedQuery out;
  out.query_articles = linker().LinkToArticles(keywords);

  if (out.query_articles.empty()) {
    // Nothing linked: retrieval proceeds with the raw keywords.
    out.titles.push_back(std::string(keywords));
    out.query = ir::QueryNode::CombinePhrases(out.titles);
    if (out.query.children.empty()) {
      return Status::InvalidArgument("empty keywords");
    }
    return out;
  }

  WQE_ASSIGN_OR_RETURN(out.feature_articles,
                       SelectFeatures(out.query_articles));

  for (NodeId q : out.query_articles) {
    out.titles.push_back(kb().display_title(q));
  }
  for (NodeId f : out.feature_articles) {
    out.titles.push_back(kb().display_title(f));
  }
  out.query = ir::QueryNode::CombinePhrases(out.titles);
  return out;
}

}  // namespace wqe::expansion
