#pragma once

/// \file evaluation.h
/// \brief Track-level evaluation of expansion systems (E10/E11 benches).

#include <array>
#include <string>

#include "expansion/expander.h"
#include "groundtruth/pipeline.h"

namespace wqe::expansion {

/// \brief Aggregate retrieval quality of one system over all topics.
struct SystemEvaluation {
  std::string name;
  std::array<double, 4> mean_precision{};  ///< P@1, P@5, P@10, P@15
  double mean_o = 0.0;                     ///< Equation 1, averaged
  double mean_features = 0.0;              ///< avg |features| per topic
  size_t topics = 0;
};

/// \brief Runs `expander` over every topic of the pipeline's track and
/// averages the precision metrics.
Result<SystemEvaluation> EvaluateExpander(const Expander& expander,
                                          const groundtruth::Pipeline& pipeline);

}  // namespace wqe::expansion
