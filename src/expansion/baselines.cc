#include "expansion/baselines.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "graph/undirected_view.h"

namespace wqe::expansion {

Result<std::vector<NodeId>> NoExpansion::SelectFeatures(
    const std::vector<NodeId>& query_articles) const {
  (void)query_articles;
  return std::vector<NodeId>{};
}

Result<std::vector<NodeId>> DirectLinkExpansion::SelectFeatures(
    const std::vector<NodeId>& query_articles) const {
  std::unordered_set<NodeId> query_set(query_articles.begin(),
                                       query_articles.end());
  // Candidate -> (mutual?, first-seen order).
  struct Candidate {
    NodeId article;
    bool mutual;
    size_t order;
  };
  std::vector<Candidate> candidates;
  std::unordered_set<NodeId> seen;
  for (NodeId q : query_articles) {
    for (NodeId out : kb().LinkedFrom(q)) {
      if (query_set.count(out) || !seen.insert(out).second) continue;
      bool mutual = kb().csr().HasEdge(out, q, graph::EdgeKind::kLink);
      candidates.push_back(Candidate{out, mutual, candidates.size()});
    }
  }
  if (options_.prioritize_mutual) {
    std::stable_sort(candidates.begin(), candidates.end(),
                     [](const Candidate& a, const Candidate& b) {
                       return a.mutual > b.mutual;
                     });
  }
  std::vector<NodeId> features;
  for (const Candidate& c : candidates) {
    if (features.size() >= options_.max_features) break;
    features.push_back(c.article);
  }
  return features;
}

Result<std::vector<NodeId>> CommunityExpansion::SelectFeatures(
    const std::vector<NodeId>& query_articles) const {
  std::vector<NodeId> ball = kb().Neighborhood(
      query_articles, options_.neighborhood_radius, options_.max_neighborhood);
  graph::UndirectedView view(kb().csr(), ball);

  std::unordered_set<uint32_t> query_local;
  for (NodeId q : query_articles) {
    uint32_t l = view.ToLocal(q);
    if (l != UINT32_MAX) query_local.insert(l);
  }

  // Triangle support: candidate c gains one unit per triangle {q, x, c}
  // with q a query article.
  std::unordered_map<NodeId, double> support;
  for (uint32_t q : query_local) {
    const auto& nq = view.Neighbors(q);
    for (size_t i = 0; i < nq.size(); ++i) {
      for (size_t j = i + 1; j < nq.size(); ++j) {
        if (!view.HasEdge(nq[i], nq[j])) continue;
        for (uint32_t corner : {nq[i], nq[j]}) {
          if (query_local.count(corner)) continue;
          NodeId global = view.ToGlobal(corner);
          if (!kb().csr().IsArticle(global)) continue;
          support[global] += 1.0;
        }
      }
    }
  }
  std::vector<std::pair<NodeId, double>> ranked(support.begin(),
                                                support.end());
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  std::vector<NodeId> features;
  for (const auto& [article, s] : ranked) {
    (void)s;
    if (features.size() >= options_.max_features) break;
    features.push_back(article);
  }
  return features;
}

}  // namespace wqe::expansion
