#pragma once

/// \file cycle_expander.h
/// \brief The paper's core proposal as a working system.
///
/// §3/§4 conclude that the best expansion features live in *dense cycles
/// with a category ratio around 30%*: short cycles sharpen early precision,
/// longer ones widen the result set.  `CycleExpander` operationalizes
/// that: it takes the knowledge-base ball around the linked query articles,
/// enumerates cycles of length 2–5 through them, keeps cycles passing the
/// density/category-ratio filters, and ranks candidate articles by their
/// accumulated cycle evidence.

#include "expansion/expander.h"
#include "graph/cycle_metrics.h"

namespace wqe::serve {
class ThreadPool;  // fwd: the expander only hands the pool to the enumerator
}  // namespace wqe::serve

namespace wqe::expansion {

/// \brief Filter and ranking knobs (defaults = the paper's findings).
struct CycleExpanderOptions {
  /// BFS radius of the neighborhood ball around the query articles.
  uint32_t neighborhood_radius = 2;
  /// Cap on the ball size (cycle enumeration is exponential in length).
  size_t max_neighborhood = 400;

  uint32_t min_cycle_length = 2;
  uint32_t max_cycle_length = 5;

  /// Minimum extra-edge density ("the denser the cycle, the better its
  /// contribution", Fig 9), applied to cycles of length >=
  /// `min_density_from_length`.  Shorter cycles (3) are tight enough that
  /// the category filter alone suffices; long cycles without extra edges
  /// are mostly category co-membership noise.
  double min_density = 0.4;
  uint32_t min_density_from_length = 4;

  /// Category-ratio window for cycles of length >= 3 (the paper's "around
  /// the 30%"); category-free cycles are rejected as semantically loose
  /// (the sheep–quarantine–anthrax example, Fig 8).
  double min_category_ratio = 0.15;
  double max_category_ratio = 0.55;

  /// Length-2 cycles carry no categories and are accepted unconditionally
  /// (they have the highest average contribution, Fig 5); this weight
  /// boosts their articles in the ranking.
  double two_cycle_weight = 2.0;

  /// Evidence from a cycle of length L is scaled by decay^(L-2): the
  /// number of cycles grows roughly geometrically with length (Fig 6), so
  /// without normalization long-cycle counts would drown out the scarce,
  /// high-contribution short structures (Fig 5).
  double length_decay = 0.3;

  /// Per-article, per-length cycle counts enter the score through a square
  /// root, damping the combinatorial explosion of long cycles through
  /// well-connected but semantically loose articles.
  bool sqrt_count_damping = true;

  /// Number of expansion features returned.
  size_t max_features = 5;

  /// Safety cap on enumerated cycles.
  size_t max_cycles = 50000;

  /// §4 future-work extension: also emit the redirect aliases of the
  /// selected features ("less common ways to refer a concept").  Redirects
  /// can never close a cycle themselves (they carry only the redirect
  /// edge), so they are reachable only through this explicit opt-in.
  bool include_redirect_aliases = false;
  size_t max_alias_features = 3;

  /// Threads for the enumeration over the neighborhood ball (1 =
  /// sequential, 0 = auto; see graph/cycles.h).  Purely an execution
  /// knob — features are bit-identical at any count — so it is *not* an
  /// `ExpanderOverrides` field: it must never split serving-cache keys.
  /// Requests served from a `serve::Server` worker degrade to sequential
  /// (request-level parallelism already owns the pool there).
  uint32_t num_threads = 1;
  /// Pool the enumeration borrows; `api::Engine::Build` injects its own
  /// when `EngineOptions::enumeration_threads != 1` so per-request calls
  /// never spawn transient pools.
  serve::ThreadPool* pool = nullptr;
  /// Ball-prune the neighborhood before enumerating (graph/ball_prune.h).
  /// Features are bit-identical either way — like `num_threads` this is
  /// an execution knob, NOT an `ExpanderOverrides` field, so it never
  /// splits serving-cache keys.  `api::Engine::Build` ANDs in
  /// `EngineOptions::prune_ball`: disabling at either layer disables.
  bool prune_ball = true;
};

/// \brief Dense-cycle expansion system.
class CycleExpander : public Expander {
 public:
  CycleExpander(const wiki::KnowledgeBase& kb,
                const linking::EntityLinker& linker,
                CycleExpanderOptions options = {})
      : Expander(kb, linker), options_(options) {}

  const char* name() const override { return "cycle-expansion"; }

  /// \brief True when a cycle (by its metrics) passes the structural
  /// filters. Exposed for tests and the filter-ablation bench.
  bool AcceptsCycle(const graph::CycleMetrics& metrics) const;

  const CycleExpanderOptions& options() const { return options_; }

 protected:
  Result<std::vector<NodeId>> SelectFeatures(
      const std::vector<NodeId>& query_articles) const override;

 private:
  CycleExpanderOptions options_;
};

}  // namespace wqe::expansion
