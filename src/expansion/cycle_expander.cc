#include "expansion/cycle_expander.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <optional>
#include <unordered_map>

#include "common/deadline.h"
#include "common/fault_injection.h"
#include "common/macros.h"
#include "graph/cycles.h"
#include "graph/undirected_view.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace wqe::expansion {

namespace {
/// Query-ball materialization latency (neighborhood walk + undirected
/// slice), shared across expander instances.
obs::Histogram* BallExtractionHistogram() {
  static obs::Histogram* histogram = obs::MetricsRegistry::Global().GetHistogram(
      "wqe.expansion.ball_extraction_ms");
  return histogram;
}
}  // namespace

bool CycleExpander::AcceptsCycle(const graph::CycleMetrics& metrics) const {
  if (metrics.length < options_.min_cycle_length ||
      metrics.length > options_.max_cycle_length) {
    return false;
  }
  if (metrics.length == 2) return true;
  if (metrics.category_ratio < options_.min_category_ratio ||
      metrics.category_ratio > options_.max_category_ratio) {
    return false;
  }
  if (metrics.length >= options_.min_density_from_length &&
      metrics.extra_edge_density < options_.min_density) {
    return false;
  }
  return true;
}

Result<std::vector<NodeId>> CycleExpander::SelectFeatures(
    const std::vector<NodeId>& query_articles) const {
  // The engine freezes the KB at build time; every request slices the same
  // shared snapshot — no per-request adjacency re-materialization.
  // A request that arrives already over budget does no work at all.
  WQE_RETURN_NOT_OK(common::ExecStatus());
  const graph::CsrGraph& csr = kb().csr();

  // 1. Neighborhood ball + its undirected slice, timed as one stage (the
  // cost the cache saves on a hit, alongside the enumeration itself).
  std::vector<NodeId> ball;
  std::optional<graph::UndirectedView> view_storage;
  {
    obs::Span span("ball-extraction", BallExtractionHistogram());
    ball = kb().Neighborhood(query_articles, options_.neighborhood_radius,
                             options_.max_neighborhood);
    view_storage.emplace(csr, ball);
  }
  const graph::UndirectedView& view = *view_storage;

  // 2. Cycles through a query article.
  graph::CycleEnumerationOptions enum_options;
  enum_options.min_length = options_.min_cycle_length;
  enum_options.max_length = options_.max_cycle_length;
  enum_options.seeds = query_articles;
  enum_options.max_cycles = options_.max_cycles;
  enum_options.num_threads = options_.num_threads;
  enum_options.pool = options_.pool;
  enum_options.prune_ball = options_.prune_ball;
  graph::CycleEnumerator enumerator(view);

  // 3. Accumulate per-article, per-length quality-weighted cycle counts.
  struct PerLength {
    std::array<double, 6> weight_sum{};  // index = cycle length (2..5)
    std::array<uint32_t, 6> count{};
  };
  std::unordered_map<NodeId, PerLength> tallies;
  WQE_FAULT_POINT("expansion.enumeration");
  enumerator.Visit(enum_options, [&](const std::vector<uint32_t>& local) {
    graph::Cycle cycle;
    cycle.nodes.reserve(local.size());
    for (uint32_t l : local) cycle.nodes.push_back(view.ToGlobal(l));
    graph::CycleMetrics metrics = graph::ComputeCycleMetrics(csr, cycle);
    if (!AcceptsCycle(metrics)) return true;

    double quality = metrics.length == 2
                         ? options_.two_cycle_weight
                         : 1.0 + metrics.extra_edge_density;
    for (NodeId n : cycle.nodes) {
      if (!csr.IsArticle(n)) continue;
      if (std::find(query_articles.begin(), query_articles.end(), n) !=
          query_articles.end()) {
        continue;
      }
      PerLength& t = tallies[n];
      t.weight_sum[metrics.length] += quality;
      ++t.count[metrics.length];
    }
    return true;
  });
  // An enumeration truncated by a deadline/cancel interruption has seen
  // only a prefix of the cycles; a ranking built from it must never be
  // reported as success.  Surface the interruption as the request status.
  WQE_RETURN_NOT_OK(common::ExecStatus());

  // 4. Score: decayed by length, damped by sqrt of the count so that one
  // rare tight structure outranks dozens of loose long cycles.
  std::vector<std::pair<NodeId, double>> ranked;
  ranked.reserve(tallies.size());
  for (const auto& [article, t] : tallies) {
    double score = 0.0;
    for (uint32_t len = 2; len <= 5; ++len) {
      if (t.count[len] == 0) continue;
      double mean_quality =
          t.weight_sum[len] / static_cast<double>(t.count[len]);
      double volume = options_.sqrt_count_damping
                          ? std::sqrt(static_cast<double>(t.count[len]))
                          : static_cast<double>(t.count[len]);
      score += std::pow(options_.length_decay, static_cast<double>(len - 2)) *
               mean_quality * volume;
    }
    ranked.emplace_back(article, score);
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second > b.second;
              return a.first < b.first;
            });
  std::vector<NodeId> features;
  for (const auto& [article, weight] : ranked) {
    (void)weight;
    if (features.size() >= options_.max_features) break;
    features.push_back(article);
  }

  // Optional §4 extension: redirect aliases of the strongest features, in
  // rank order.
  if (options_.include_redirect_aliases) {
    size_t aliases_added = 0;
    size_t base = features.size();
    for (size_t i = 0; i < base && aliases_added < options_.max_alias_features;
         ++i) {
      for (NodeId alias : kb().RedirectsOf(features[i])) {
        if (aliases_added >= options_.max_alias_features) break;
        features.push_back(alias);
        ++aliases_added;
      }
    }
  }
  return features;
}

}  // namespace wqe::expansion
