#pragma once

/// \file expander.h
/// \brief Query-expansion system interface.
///
/// §4 of the paper calls for "techniques aimed at taking advantage of the
/// trends analyzed in this paper in real query expansion systems".  This
/// module packages the pipeline as such a system: an `Expander` takes raw
/// query keywords, links them to Wikipedia articles, selects expansion
/// features from the knowledge-base structure, and emits a ready-to-run
/// exact-phrase query.  Implementations: `CycleExpander` (the paper's
/// dense-cycle criterion) and the baselines in baselines.h.

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "ir/query.h"
#include "linking/entity_linker.h"
#include "wiki/knowledge_base.h"

namespace wqe::expansion {

using graph::NodeId;

/// \brief Output of an expansion.
struct ExpandedQuery {
  std::vector<NodeId> query_articles;    ///< L(k), linked from the keywords
  std::vector<NodeId> feature_articles;  ///< selected expansion features
  std::vector<std::string> titles;       ///< all phrase titles issued
  ir::QueryNode query;                   ///< #combine of exact phrases
};

/// \brief Abstract expansion system.
///
/// The template method `Expand` handles linking and query construction;
/// subclasses implement feature selection only.
///
/// Construction takes references: an expander is never valid without a
/// knowledge base and a linker, and the referenced objects must outlive
/// it (the `api::Engine` facade owns both and hands out expanders through
/// its registry, which is the supported way to build one).
class Expander {
 public:
  Expander(const wiki::KnowledgeBase& kb,
           const linking::EntityLinker& linker)
      : kb_(&kb), linker_(&linker) {}
  virtual ~Expander() = default;

  /// \brief System name (for reports).
  virtual const char* name() const = 0;

  /// \brief Runs the full expansion.  When the keywords link to no
  /// article, the query falls back to the raw keywords with no features.
  Result<ExpandedQuery> Expand(std::string_view keywords) const;

 protected:
  /// \brief Selects expansion features for the linked query articles.
  virtual Result<std::vector<NodeId>> SelectFeatures(
      const std::vector<NodeId>& query_articles) const = 0;

  const wiki::KnowledgeBase& kb() const { return *kb_; }
  const linking::EntityLinker& linker() const { return *linker_; }

 private:
  const wiki::KnowledgeBase* kb_;
  const linking::EntityLinker* linker_;
};

}  // namespace wqe::expansion
