#pragma once

/// \file entity_linker.h
/// \brief Entity linking against Wikipedia titles (paper §2.1).
///
/// Implements the paper's L(·) function: "identifying the set of the
/// largest substrings in the input that match the title of an article in
/// Wikipedia".  Matching is greedy left-to-right, longest-window-first.
/// Titles of redirect articles match too and resolve to their main
/// article.  Additionally, synonym phrases are searched: a window that
/// fails to match directly is retried with single terms replaced by their
/// synonyms, where the synonyms of a term t are the titles of the
/// redirects of the article titled t (and, symmetrically, the main title
/// when t is itself a redirect title).

#include <string>
#include <string_view>
#include <vector>

#include "text/tokenizer.h"
#include "wiki/knowledge_base.h"

namespace wqe::linking {

using graph::NodeId;

/// \brief One linked mention.
struct EntityMention {
  NodeId article = graph::kInvalidNode;  ///< resolved main article
  size_t begin = 0;                      ///< byte span in the input text
  size_t end = 0;
  std::string surface;                   ///< matched surface form
  bool via_redirect = false;             ///< matched a redirect title
  bool via_synonym = false;              ///< matched a synonym phrase
};

/// \brief Linker options.
struct EntityLinkerOptions {
  /// Longest title window, in tokens.
  uint32_t max_window = 5;
  /// Enable the synonym-phrase search.
  bool use_synonyms = true;
  /// Skip single-token mentions that are stopwords.
  bool skip_stopword_singletons = true;
};

/// \brief Greedy largest-substring entity linker.
class EntityLinker {
 public:
  EntityLinker(const wiki::KnowledgeBase* kb, EntityLinkerOptions options = {})
      : kb_(kb), options_(options) {}

  /// \brief All mentions in reading order (non-overlapping).
  std::vector<EntityMention> Link(std::string_view text) const;

  /// \brief The paper's L(text): deduplicated resolved main articles.
  std::vector<NodeId> LinkToArticles(std::string_view text) const;

 private:
  /// Tries to match tokens[i, i+len) directly; returns the matched node or
  /// kInvalidNode.
  NodeId MatchWindow(const std::vector<text::Token>& tokens, size_t i,
                     size_t len) const;

  /// Tries synonym-substituted variants of the window.
  NodeId MatchWindowViaSynonyms(const std::vector<text::Token>& tokens,
                                size_t i, size_t len,
                                std::string* surface) const;

  /// Collects synonym strings of a single term.
  std::vector<std::string> SynonymsOf(const std::string& term) const;

  const wiki::KnowledgeBase* kb_;
  EntityLinkerOptions options_;
};

}  // namespace wqe::linking
