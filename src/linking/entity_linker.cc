#include "linking/entity_linker.h"

#include <algorithm>
#include <unordered_set>

#include "common/string_util.h"
#include "text/stopwords.h"

namespace wqe::linking {

namespace {

/// Joins token texts [i, i+len) with single spaces (tokens are already
/// lowercase, which matches normalized titles).
std::string WindowText(const std::vector<text::Token>& tokens, size_t i,
                       size_t len) {
  std::string out;
  for (size_t k = 0; k < len; ++k) {
    if (k > 0) out += " ";
    out += tokens[i + k].text;
  }
  return out;
}

}  // namespace

NodeId EntityLinker::MatchWindow(const std::vector<text::Token>& tokens,
                                 size_t i, size_t len) const {
  std::string key = WindowText(tokens, i, len);
  auto hit = kb_->FindArticle(key);
  return hit.has_value() ? *hit : graph::kInvalidNode;
}

std::vector<std::string> EntityLinker::SynonymsOf(
    const std::string& term) const {
  std::vector<std::string> out;
  auto node = kb_->FindArticle(term);
  if (!node.has_value()) return out;
  if (kb_->IsRedirect(*node)) {
    // The main title is a synonym of its redirect alias.
    out.push_back(kb_->title(kb_->ResolveRedirect(*node)));
  } else {
    // The redirect aliases are synonyms of the main title.
    for (NodeId r : kb_->RedirectsOf(*node)) {
      out.push_back(kb_->title(r));
    }
  }
  return out;
}

NodeId EntityLinker::MatchWindowViaSynonyms(
    const std::vector<text::Token>& tokens, size_t i, size_t len,
    std::string* surface) const {
  // Replace one term at a time by each of its synonyms and retry the
  // lookup ("we derive a synonym phrase by replacing at least one term of
  // the input text by a synonymous term").
  for (size_t k = 0; k < len; ++k) {
    std::vector<std::string> synonyms = SynonymsOf(tokens[i + k].text);
    for (const std::string& syn : synonyms) {
      std::string key;
      for (size_t m = 0; m < len; ++m) {
        if (m > 0) key += " ";
        key += (m == k) ? syn : tokens[i + m].text;
      }
      auto hit = kb_->FindArticle(key);
      if (hit.has_value()) {
        *surface = key;
        return *hit;
      }
    }
  }
  return graph::kInvalidNode;
}

std::vector<EntityMention> EntityLinker::Link(std::string_view input) const {
  text::TokenizerOptions tok_options;
  text::Tokenizer tokenizer(tok_options);
  std::vector<text::Token> tokens = tokenizer.Tokenize(input);
  const text::StopwordSet& stopwords = text::StopwordSet::Default();

  std::vector<EntityMention> mentions;
  size_t i = 0;
  while (i < tokens.size()) {
    size_t longest = std::min<size_t>(options_.max_window,
                                      tokens.size() - i);
    bool matched = false;
    for (size_t len = longest; len >= 1 && !matched; --len) {
      // Skip stopword singletons ("the" is not an entity).
      if (len == 1 && options_.skip_stopword_singletons &&
          stopwords.Contains(tokens[i].text)) {
        break;
      }
      NodeId node = MatchWindow(tokens, i, len);
      bool via_synonym = false;
      std::string surface = WindowText(tokens, i, len);
      if (node == graph::kInvalidNode && options_.use_synonyms && len > 1) {
        node = MatchWindowViaSynonyms(tokens, i, len, &surface);
        via_synonym = node != graph::kInvalidNode;
      }
      if (node != graph::kInvalidNode) {
        EntityMention mention;
        mention.via_redirect = kb_->IsRedirect(node);
        mention.article = kb_->ResolveRedirect(node);
        mention.begin = tokens[i].begin;
        mention.end = tokens[i + len - 1].end;
        mention.surface = std::move(surface);
        mention.via_synonym = via_synonym;
        mentions.push_back(std::move(mention));
        i += len;
        matched = true;
      }
    }
    if (!matched) ++i;
  }
  return mentions;
}

std::vector<NodeId> EntityLinker::LinkToArticles(std::string_view text) const {
  std::vector<EntityMention> mentions = Link(text);
  std::vector<NodeId> out;
  std::unordered_set<NodeId> seen;
  for (const EntityMention& m : mentions) {
    if (seen.insert(m.article).second) out.push_back(m.article);
  }
  return out;
}

}  // namespace wqe::linking
