#include "obs/trace.h"

#include <atomic>
#include <utility>

#include "common/hash.h"
#include "obs/metrics.h"

namespace wqe::obs {

TraceLog::TraceLog(size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {
  // Appends up to capacity never reallocate (and so never spike an
  // append's critical section).
  ring_.reserve(capacity_);
}

void TraceLog::Append(SpanRecord record) {
  common::MutexLock lock(mu_);
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(record));
  } else {
    ring_[next_] = std::move(record);
    next_ = (next_ + 1) % capacity_;
  }
}

std::vector<SpanRecord> TraceLog::Snapshot() const {
  common::MutexLock lock(mu_);
  std::vector<SpanRecord> out;
  out.reserve(ring_.size());
  // Once the ring wrapped, next_ points at the oldest record.
  for (size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(next_ + i) % ring_.size()]);
  }
  return out;
}

void TraceLog::Clear() {
  common::MutexLock lock(mu_);
  ring_.clear();
  next_ = 0;
}

uint64_t NewTraceId() {
  static std::atomic<uint64_t> next{0};
  // MixHash is bijective and maps only 0 to 0, so ids from a counter
  // starting at 1 are nonzero, unique, and deterministic per run.
  return MixHash(next.fetch_add(1, std::memory_order_relaxed) + 1);
}

uint64_t NewSpanId() {
  static std::atomic<uint64_t> next{0};
  return next.fetch_add(1, std::memory_order_relaxed) + 1;
}

namespace {

std::atomic<uint32_t> g_sample_every{8};

/// The root-only sampling decision (children inherit their parent's).
bool SampleRoot() {
  const uint32_t n = g_sample_every.load(std::memory_order_relaxed);
  if (n <= 1) return n == 1;
  static std::atomic<uint32_t> roots{0};
  return roots.fetch_add(1, std::memory_order_relaxed) % n == 0;
}

}  // namespace

void SetTraceSampleEvery(uint32_t n) {
  g_sample_every.store(n, std::memory_order_relaxed);
}

uint32_t GetTraceSampleEvery() {
  return g_sample_every.load(std::memory_order_relaxed);
}

double MillisSinceProcessStart(std::chrono::steady_clock::time_point tp) {
  static const std::chrono::steady_clock::time_point anchor =
      std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(tp - anchor).count();
}

Span::Span(const char* stage, Histogram* latency, MetricsRegistry* registry)
    : stage_(stage), latency_(latency), registry_(registry) {
  if (!Enabled()) return;
  active_ = true;
  parent_ = common::CurrentTraceContext();
  if (parent_.active()) {
    ctx_.trace_id = parent_.trace_id;
    ctx_.sampled = parent_.sampled;
  } else {
    ctx_.trace_id = NewTraceId();
    ctx_.sampled = SampleRoot();
  }
  ctx_.span_id = NewSpanId();
  common::ExchangeCurrentTraceContext(ctx_);
  start_ = std::chrono::steady_clock::now();
}

Span::~Span() {
  if (!active_) return;
  const auto end = std::chrono::steady_clock::now();
  const double duration_ms =
      std::chrono::duration<double, std::milli>(end - start_).count();
  common::ExchangeCurrentTraceContext(parent_);
  if (latency_ != nullptr) latency_->Record(duration_ms);
  if (!ctx_.sampled) return;
  SpanRecord record;
  record.trace_id = ctx_.trace_id;
  record.span_id = ctx_.span_id;
  record.parent_span_id = parent_.span_id;
  record.stage = stage_;
  record.start_ms = MillisSinceProcessStart(start_);
  record.duration_ms = duration_ms;
  MetricsRegistry& registry =
      registry_ != nullptr ? *registry_ : MetricsRegistry::Global();
  registry.trace_log().Append(std::move(record));
}

}  // namespace wqe::obs
