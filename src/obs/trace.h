#pragma once

/// \file trace.h
/// \brief Lightweight request tracing: spans over the ambient
/// `common::TraceContext`.
///
/// A `Span` marks one stage of one request: it captures the calling
/// thread's trace context as its parent (starting a fresh trace when none
/// is in scope), installs itself as the current context for its lifetime,
/// and on destruction appends a finished `SpanRecord` — (trace id, span
/// id, parent, stage, start, duration) — to its registry's `TraceLog`,
/// optionally recording the duration into a latency `Histogram`.
///
/// Propagation is implicit: anything called under an open span (engine →
/// expander → `graph::CycleEnumerator`) sees the context via the
/// thread-local carrier in common/trace.h, `serve::ThreadPool::Submit`
/// re-installs the submitter's context inside the task (and logs the
/// queue wait as its own span), and `WQE_LOG` lines carry the trace id.
///
/// Cost: two steady-clock reads and a histogram record per span, plus an
/// allocation-free locked ring append on head-sampled traces only (see
/// `SetTraceSampleEvery`; default every 8th trace); inert (no clock
/// reads) when `obs::Enabled()` is off.

#include <chrono>
#include <cstdint>
#include <string_view>
#include <vector>

#include "common/mutex.h"
#include "common/trace.h"

namespace wqe::obs {

class Histogram;
class MetricsRegistry;

/// \brief One finished span.
struct SpanRecord {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_span_id = 0;  ///< 0 for a trace root
  /// Stage name.  A view, not an owned string, so appending a record
  /// never allocates on the serve hot path; every producer passes a
  /// string literal (`Span` takes `const char*`), and custom producers
  /// must likewise point at static storage.
  std::string_view stage;
  double start_ms = 0.0;  ///< steady-clock ms since process start
  double duration_ms = 0.0;
};

/// \brief Bounded ring of finished spans (newest overwrite oldest).
/// Thread-safe; the append lock is held for one record copy.
class TraceLog {
 public:
  explicit TraceLog(size_t capacity = 1024);

  void Append(SpanRecord record) WQE_EXCLUDES(mu_);
  /// \brief Resident records, oldest first.
  std::vector<SpanRecord> Snapshot() const WQE_EXCLUDES(mu_);
  void Clear() WQE_EXCLUDES(mu_);
  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable common::Mutex mu_;
  std::vector<SpanRecord> ring_ WQE_GUARDED_BY(mu_);
  size_t next_ WQE_GUARDED_BY(mu_) = 0;  ///< overwrite cursor once full
};

/// \brief Fresh nonzero trace id (mixed so ids look random but the
/// sequence is deterministic per process run).
uint64_t NewTraceId();
/// \brief Fresh nonzero span id.
uint64_t NewSpanId();

/// \brief Head-sampling rate for the trace log: every `n`-th trace root
/// is sampled and its whole span tree recorded (1 = every trace, 0 =
/// none).  Default 8 — the log is a bounded debugging ring, so sampling
/// stretches its coverage window and keeps the serve hot path's ring
/// appends off seven of eight requests; histograms and counters always
/// see every request regardless.  Tests that assert on specific records
/// set this to 1.
void SetTraceSampleEvery(uint32_t n);
uint32_t GetTraceSampleEvery();

/// \brief Steady-clock milliseconds since the first observability use in
/// this process; the time base of `SpanRecord::start_ms`.
double MillisSinceProcessStart(std::chrono::steady_clock::time_point tp);

/// \brief RAII stage span.  See the file comment.
class Span {
 public:
  /// \brief Opens a span for `stage`.  `latency` (may be null) receives
  /// the duration on close; `registry` (null = the global registry)
  /// receives the finished record in its trace log.  Inert when
  /// observability is disabled.
  explicit Span(const char* stage, Histogram* latency = nullptr,
                MetricsRegistry* registry = nullptr);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// \brief This span's context ({0,0} when the span is inert).
  const common::TraceContext& context() const { return ctx_; }

 private:
  const char* stage_;
  Histogram* latency_;
  MetricsRegistry* registry_;
  bool active_ = false;
  common::TraceContext ctx_;
  common::TraceContext parent_;
  std::chrono::steady_clock::time_point start_;
};

/// \brief RAII install/restore of a captured context — how a pool task
/// runs under its submitter's trace (see serve::ThreadPool::Submit).
class ScopedTraceContext {
 public:
  explicit ScopedTraceContext(common::TraceContext ctx)
      : prev_(common::ExchangeCurrentTraceContext(ctx)) {}
  ~ScopedTraceContext() { common::ExchangeCurrentTraceContext(prev_); }

  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

 private:
  common::TraceContext prev_;
};

}  // namespace wqe::obs
