#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>

#include "common/macros.h"

namespace wqe::obs {

namespace {

/// Serialized instrument key: `name{k=v,...}` with labels already sorted.
std::string InstrumentKey(std::string_view name, const Labels& labels) {
  std::string key(name);
  if (!labels.empty()) {
    key += '{';
    for (size_t i = 0; i < labels.size(); ++i) {
      if (i > 0) key += ',';
      key += labels[i].first;
      key += '=';
      key += labels[i].second;
    }
    key += '}';
  }
  return key;
}

/// Compact deterministic double formatting for the exporters.
std::string FormatValue(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

void AppendJsonString(std::string* out, std::string_view s) {
  *out += '"';
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      default:
        *out += c;
    }
  }
  *out += '"';
}

std::string PrometheusName(std::string_view name) {
  std::string out(name);
  for (char& c : out) {
    if (c == '.' || c == '-') c = '_';
  }
  return out;
}

std::string PrometheusLabels(const Labels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out += ',';
    out += labels[i].first;
    out += "=\"";
    out += labels[i].second;
    out += '"';
  }
  out += '}';
  return out;
}

/// Quantiles both exporters publish for histograms.
constexpr double kQuantiles[] = {0.5, 0.9, 0.95, 0.99};
constexpr const char* kQuantileJsonKeys[] = {"p50", "p90", "p95", "p99"};
constexpr const char* kQuantileLabels[] = {"0.5", "0.9", "0.95", "0.99"};

}  // namespace

// ----------------------------------------------------------------- Gauge

uint64_t Gauge::Encode(double v) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

double Gauge::Decode(uint64_t bits) {
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

// ------------------------------------------------------------- Histogram

Histogram::Histogram(HistogramOptions options)
    : options_(options),
      buckets_(2 + size_t(options.num_octaves) *
                       size_t(options.sub_buckets_per_octave)) {
  WQE_CHECK(options_.min_value > 0.0);
  WQE_CHECK(options_.num_octaves > 0);
  WQE_CHECK(options_.sub_buckets_per_octave > 0);
}

size_t Histogram::BucketIndex(double value) const {
  // Underflow also absorbs NaN (the !(>=) form) so Record never indexes
  // out of range on garbage input.
  if (!(value >= options_.min_value)) return 0;
  const double ratio = value / options_.min_value;
  const int octave = std::ilogb(ratio);  // floor(log2) for finite positives
  if (octave >= int(options_.num_octaves)) return buckets_.size() - 1;
  const double base = std::ldexp(options_.min_value, octave);
  uint32_t sub = uint32_t((value - base) / base *
                          double(options_.sub_buckets_per_octave));
  sub = std::min(sub, options_.sub_buckets_per_octave - 1);
  return 1 + size_t(octave) * options_.sub_buckets_per_octave + sub;
}

double Histogram::BucketWidthFor(double value) const {
  if (!(value >= options_.min_value)) return options_.min_value;
  const int octave = std::ilogb(value / options_.min_value);
  if (octave >= int(options_.num_octaves)) return 0.0;  // overflow: clamped
  return std::ldexp(options_.min_value, octave) /
         double(options_.sub_buckets_per_octave);
}

void Histogram::Record(double value) {
  if (!Enabled()) return;
  buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  // Lock-free CAS add on the IEEE bits (atomic<double>::fetch_add is
  // exactly this loop under the hood; spelled out to stay pre-C++20-ABI
  // portable across libstdc++ versions).
  uint64_t observed = sum_bits_.load(std::memory_order_relaxed);
  for (;;) {
    double current = 0.0;
    std::memcpy(&current, &observed, sizeof(current));
    const double next = current + value;
    uint64_t next_bits = 0;
    std::memcpy(&next_bits, &next, sizeof(next_bits));
    if (sum_bits_.compare_exchange_weak(observed, next_bits,
                                        std::memory_order_relaxed)) {
      break;
    }
  }
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot snap;
  snap.layout = options_;
  snap.buckets.resize(buckets_.size());
  for (size_t i = 0; i < buckets_.size(); ++i) {
    snap.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  snap.count = count_.load(std::memory_order_relaxed);
  const uint64_t bits = sum_bits_.load(std::memory_order_relaxed);
  std::memcpy(&snap.sum, &bits, sizeof(snap.sum));
  // Relaxed reads can race Record between the bucket loop and the count
  // load; percentile math must see a self-consistent total.
  uint64_t bucket_total = 0;
  for (uint64_t b : snap.buckets) bucket_total += b;
  snap.count = bucket_total;
  return snap;
}

double HistogramSnapshot::Percentile(double p) const {
  if (count == 0 || buckets.empty()) return 0.0;
  p = std::clamp(p, 0.0, 1.0);
  const double rank = p * double(count - 1);
  const uint32_t sub = layout.sub_buckets_per_octave;
  uint64_t cum = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] == 0) continue;
    if (double(cum + buckets[i]) <= rank) {
      cum += buckets[i];
      continue;
    }
    // Bucket bounds: [0, min) for underflow; top edge for overflow.
    double lo, width;
    if (i == 0) {
      lo = 0.0;
      width = layout.min_value;
    } else if (i == buckets.size() - 1) {
      return std::ldexp(layout.min_value, int(layout.num_octaves));
    } else {
      const size_t body = i - 1;
      const int octave = int(body / sub);
      const uint32_t j = uint32_t(body % sub);
      const double base = std::ldexp(layout.min_value, octave);
      lo = base * (1.0 + double(j) / double(sub));
      width = base / double(sub);
    }
    const double inside = rank - double(cum);
    const double frac = (inside + 0.5) / double(buckets[i]);
    return lo + width * std::min(frac, 1.0);
  }
  // rank == count - 1 landed exactly past the loop (all-counted): top
  // non-empty bucket's upper edge.
  return std::ldexp(layout.min_value, int(layout.num_octaves));
}

HistogramSnapshot HistogramSnapshot::DeltaSince(
    const HistogramSnapshot& earlier) const {
  HistogramSnapshot delta;
  delta.layout = layout;
  delta.buckets.resize(buckets.size());
  WQE_CHECK(earlier.buckets.size() == buckets.size());
  uint64_t total = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    WQE_CHECK(buckets[i] >= earlier.buckets[i]);  // counts are monotonic
    delta.buckets[i] = buckets[i] - earlier.buckets[i];
    total += delta.buckets[i];
  }
  delta.count = total;
  delta.sum = sum - earlier.sum;
  return delta;
}

// -------------------------------------------------------------- Registry

MetricsRegistry::MetricsRegistry() = default;
MetricsRegistry::~MetricsRegistry() = default;

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* global = new MetricsRegistry();  // never destroyed
  return *global;
}

MetricsRegistry::Instrument& MetricsRegistry::GetOrCreate(
    std::string_view name, Labels labels, Kind kind,
    const HistogramOptions* hist_options) {
  std::sort(labels.begin(), labels.end());
  std::string key = InstrumentKey(name, labels);
  common::MutexLock lock(mu_);
  auto it = instruments_.find(key);
  if (it == instruments_.end()) {
    Instrument instrument;
    instrument.name = std::string(name);
    instrument.labels = std::move(labels);
    instrument.kind = kind;
    switch (kind) {
      case Kind::kCounter:
        instrument.counter = std::make_unique<Counter>();
        break;
      case Kind::kGauge:
        instrument.gauge = std::make_unique<Gauge>();
        break;
      case Kind::kHistogram:
        instrument.histogram = std::make_unique<Histogram>(
            hist_options != nullptr ? *hist_options : HistogramOptions{});
        break;
    }
    it = instruments_.emplace(std::move(key), std::move(instrument)).first;
  }
  WQE_CHECK(it->second.kind == kind);  // one key, one instrument kind
  return it->second;
}

Counter* MetricsRegistry::GetCounter(std::string_view name, Labels labels) {
  return GetOrCreate(name, std::move(labels), Kind::kCounter, nullptr)
      .counter.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name, Labels labels) {
  return GetOrCreate(name, std::move(labels), Kind::kGauge, nullptr)
      .gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name, Labels labels,
                                         HistogramOptions options) {
  return GetOrCreate(name, std::move(labels), Kind::kHistogram, &options)
      .histogram.get();
}

size_t MetricsRegistry::num_instruments() const {
  common::MutexLock lock(mu_);
  return instruments_.size();
}

std::string MetricsRegistry::DumpJson() const {
  common::MutexLock lock(mu_);
  std::string out = "{\"metrics\":[";
  bool first = true;
  for (const auto& [key, instrument] : instruments_) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":";
    AppendJsonString(&out, instrument.name);
    if (!instrument.labels.empty()) {
      out += ",\"labels\":{";
      for (size_t i = 0; i < instrument.labels.size(); ++i) {
        if (i > 0) out += ',';
        AppendJsonString(&out, instrument.labels[i].first);
        out += ':';
        AppendJsonString(&out, instrument.labels[i].second);
      }
      out += '}';
    }
    switch (instrument.kind) {
      case Kind::kCounter:
        out += ",\"type\":\"counter\",\"value\":";
        out += FormatValue(double(instrument.counter->value()));
        break;
      case Kind::kGauge:
        out += ",\"type\":\"gauge\",\"value\":";
        out += FormatValue(instrument.gauge->value());
        break;
      case Kind::kHistogram: {
        HistogramSnapshot snap = instrument.histogram->snapshot();
        out += ",\"type\":\"histogram\",\"count\":";
        out += FormatValue(double(snap.count));
        out += ",\"sum\":";
        out += FormatValue(snap.sum);
        for (size_t q = 0; q < std::size(kQuantiles); ++q) {
          out += ",\"";
          out += kQuantileJsonKeys[q];
          out += "\":";
          out += FormatValue(snap.Percentile(kQuantiles[q]));
        }
        break;
      }
    }
    out += '}';
  }
  out += "]}";
  return out;
}

std::string MetricsRegistry::DumpPrometheus() const {
  common::MutexLock lock(mu_);
  std::string out;
  for (const auto& [key, instrument] : instruments_) {
    const std::string name = PrometheusName(instrument.name);
    const std::string labels = PrometheusLabels(instrument.labels);
    switch (instrument.kind) {
      case Kind::kCounter:
        out += "# TYPE " + name + " counter\n";
        out += name + labels + " " +
               std::to_string(instrument.counter->value()) + "\n";
        break;
      case Kind::kGauge:
        out += "# TYPE " + name + " gauge\n";
        out += name + labels + " " + FormatValue(instrument.gauge->value()) +
               "\n";
        break;
      case Kind::kHistogram: {
        HistogramSnapshot snap = instrument.histogram->snapshot();
        out += "# TYPE " + name + " summary\n";
        for (size_t q = 0; q < std::size(kQuantiles); ++q) {
          Labels with_quantile = instrument.labels;
          with_quantile.emplace_back("quantile", kQuantileLabels[q]);
          out += name + PrometheusLabels(with_quantile) + " " +
                 FormatValue(snap.Percentile(kQuantiles[q])) + "\n";
        }
        out += name + "_sum" + labels + " " + FormatValue(snap.sum) + "\n";
        out += name + "_count" + labels + " " + std::to_string(snap.count) +
               "\n";
        break;
      }
    }
  }
  return out;
}

uint64_t NextInstanceId() {
  static std::atomic<uint64_t> next{0};
  return next.fetch_add(1, std::memory_order_relaxed) + 1;
}

}  // namespace wqe::obs
