#pragma once

/// \file metrics.h
/// \brief Process-wide metrics: named, labeled instruments + exporters.
///
/// The serving stack's visibility layer (ROADMAP item 5's SLO records and
/// the per-stage timing every later item — snapshot republish, sharded
/// serving, incremental updates — will report through).  Three instrument
/// kinds live in a `MetricsRegistry`:
///
///   - `Counter`   — monotonic, relaxed-atomic `Inc` (wait-free);
///   - `Gauge`     — last-value double, atomic `Set`/`Add`;
///   - `Histogram` — log-linear buckets (8 linear sub-buckets per power
///     of two), relaxed-atomic bucket increments, p50/p95/p99 derived
///     from a bucket snapshot and cross-checked against the exact
///     `wqe::PercentileSorted` in tests/obs_test.cc (error is bounded by
///     one bucket width, i.e. ~12.5% relative).
///
/// Locking contract: the registry's mutex is taken only at instrument
/// *registration* (`GetCounter`/`GetGauge`/`GetHistogram`, which callers
/// run once at setup and cache the returned pointer) and in the
/// exporters.  Recording through an instrument pointer is lock-free —
/// plain relaxed atomics, no registry participation — so the serve hot
/// path never contends on observability state.  Instrument pointers are
/// stable for the registry's lifetime (the global registry's is the
/// process's: function-local-static instrument handles are sound).
///
/// Kill switches: building with `-DWQE_OBS=0` (CMake `WQE_OBS=OFF`)
/// compiles histogram recording and span tracing down to no-ops;
/// `obs::SetEnabled(false)` is the same switch at runtime (used by
/// bench/perf_parallel_serving.cc to measure the instrumentation's
/// overhead in one binary).  Counters and gauges stay live under both —
/// they back the `EngineStats`/`ServerStats`/`ExpansionCacheStats`
/// compatibility accessors, whose counting is part of the API contract
/// (and costs one relaxed fetch_add, same as the structs they replaced).

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "obs/trace.h"

#ifndef WQE_OBS
#define WQE_OBS 1
#endif

namespace wqe::obs {

/// \brief True when this build carries the latency/tracing
/// instrumentation (CMake option `WQE_OBS`, default ON).
inline constexpr bool kCompiledIn = WQE_OBS != 0;

namespace internal {
inline std::atomic<bool> g_runtime_enabled{true};
}  // namespace internal

/// \brief Runtime master switch for histogram recording and span
/// tracing.  Counters/gauges are unaffected (see the file comment).
inline bool Enabled() {
  if constexpr (!kCompiledIn) return false;
  return internal::g_runtime_enabled.load(std::memory_order_relaxed);
}
inline void SetEnabled(bool on) {
  internal::g_runtime_enabled.store(on, std::memory_order_relaxed);
}

/// \brief Instrument labels, e.g. `{{"stage", "expansion"}}`.  Sorted by
/// key at registration so label order never splits series.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// \brief Monotonic counter.  Thread-safe; `Inc` is wait-free.
class Counter {
 public:
  void Inc(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// \brief Last-value gauge (queue depths, resident entries, ...).
class Gauge {
 public:
  void Set(double v) { bits_.store(Encode(v), std::memory_order_relaxed); }
  void Add(double delta) {
    uint64_t observed = bits_.load(std::memory_order_relaxed);
    while (!bits_.compare_exchange_weak(observed,
                                        Encode(Decode(observed) + delta),
                                        std::memory_order_relaxed)) {
    }
  }
  double value() const {
    return Decode(bits_.load(std::memory_order_relaxed));
  }

 private:
  static uint64_t Encode(double v);
  static double Decode(uint64_t bits);
  std::atomic<uint64_t> bits_{0};  // IEEE bits of 0.0
};

/// \brief Histogram bucket layout (fixed per instrument).
struct HistogramOptions {
  /// Lower edge of the first octave; values below land in the underflow
  /// bucket (whose range is [0, min_value)).
  double min_value = 1e-3;
  /// Powers of two covered; values >= min_value * 2^num_octaves land in
  /// the overflow bucket and clamp percentiles to the top edge.
  uint32_t num_octaves = 40;
  /// Linear sub-buckets per octave: relative bucket width 1/8 = 12.5%.
  uint32_t sub_buckets_per_octave = 8;
};

/// \brief One consistent-enough copy of a histogram's state (relaxed
/// per-bucket loads; exact totals once writers quiesce).  Percentiles
/// are computed from this, so a snapshot taken before and after a
/// workload can be diffed for per-pass latencies (`DeltaSince`).
struct HistogramSnapshot {
  HistogramOptions layout;
  uint64_t count = 0;
  double sum = 0.0;
  /// buckets[0] = underflow, then num_octaves * sub_buckets_per_octave
  /// log-linear buckets, then overflow.
  std::vector<uint64_t> buckets;

  /// \brief Linear-interpolated percentile from the bucket counts;
  /// `p` in [0, 1].  Returns 0 when the snapshot is empty.
  double Percentile(double p) const;
  double Mean() const { return count == 0 ? 0.0 : sum / double(count); }

  /// \brief This snapshot minus an earlier one of the same instrument
  /// (bucket-wise); the per-pass view used by the serving bench.
  HistogramSnapshot DeltaSince(const HistogramSnapshot& earlier) const;
};

/// \brief Mergeable log-linear latency histogram.  Thread-safe:
/// `Record` is one relaxed bucket fetch_add plus a lock-free sum update.
class Histogram {
 public:
  explicit Histogram(HistogramOptions options = {});

  /// \brief Records one observation.  Wait-free bucket increment; no-op
  /// when observability is disabled (compile- or runtime-switched).
  void Record(double value);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  HistogramSnapshot snapshot() const;

  /// \brief Width of the bucket `value` falls into — the percentile
  /// error bound the accuracy test asserts against.
  double BucketWidthFor(double value) const;

  const HistogramOptions& options() const { return options_; }

 private:
  size_t BucketIndex(double value) const;

  HistogramOptions options_;
  std::vector<std::atomic<uint64_t>> buckets_;  // underflow + body + overflow
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_bits_{0};  // IEEE bits; CAS-added (lock-free)
};

/// \brief Named-instrument registry with stable-schema exporters.
///
/// `Global()` is the process-wide instance; standalone instances exist
/// for isolation (each `serve::Server` can be pointed at its own, which
/// is how the serving bench gets clean per-configuration percentiles).
class MetricsRegistry {
 public:
  MetricsRegistry();
  ~MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  static MetricsRegistry& Global();

  /// \name Instrument registration
  /// Get-or-create by (name, labels); the returned pointer is stable for
  /// the registry's lifetime — resolve once, record forever.  Re-using a
  /// key with a different instrument kind is a programming error
  /// (aborts).  Takes the registry mutex; not for per-request paths.
  /// @{
  Counter* GetCounter(std::string_view name, Labels labels = {})
      WQE_EXCLUDES(mu_);
  Gauge* GetGauge(std::string_view name, Labels labels = {})
      WQE_EXCLUDES(mu_);
  Histogram* GetHistogram(std::string_view name, Labels labels = {},
                          HistogramOptions options = {}) WQE_EXCLUDES(mu_);
  /// @}

  /// \brief Stable-schema JSON dump: `{"metrics": [...]}` with one
  /// object per instrument — `name`, `labels` (omitted when empty),
  /// `type`, and `value` (counter/gauge) or `count`/`sum`/`p50`/`p90`/
  /// `p95`/`p99` (histogram) — sorted by (name, serialized labels), so
  /// equal registry contents always dump byte-identically.
  std::string DumpJson() const WQE_EXCLUDES(mu_);

  /// \brief Prometheus-style text: counters and gauges as plain series,
  /// histograms as summaries (`{quantile="..."}` series plus `_sum` and
  /// `_count`).  Dots and dashes in names become underscores.
  std::string DumpPrometheus() const WQE_EXCLUDES(mu_);

  /// \brief Finished-span ring for this registry (spans append here).
  TraceLog& trace_log() const { return trace_log_; }

  size_t num_instruments() const WQE_EXCLUDES(mu_);

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Instrument {
    std::string name;
    Labels labels;
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Instrument& GetOrCreate(std::string_view name, Labels labels, Kind kind,
                          const HistogramOptions* hist_options)
      WQE_EXCLUDES(mu_);

  mutable common::Mutex mu_;
  /// Keyed by `name{k=v,...}` (labels sorted): the exporter order.
  std::map<std::string, Instrument> instruments_ WQE_GUARDED_BY(mu_);
  mutable TraceLog trace_log_;
};

/// \brief Process-unique small id for labeling per-instance instruments
/// (engines, servers, caches): 1, 2, 3, ... in construction order, so
/// dumps are deterministic for a deterministic program.
uint64_t NextInstanceId();

}  // namespace wqe::obs
