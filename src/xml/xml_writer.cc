#include "xml/xml_writer.h"

#include "common/macros.h"
#include "xml/xml_parser.h"

namespace wqe::xml {

void XmlWriter::WriteDeclaration() {
  WQE_CHECK(buf_.empty());
  buf_ += "<?xml version=\"1.0\" encoding=\"UTF-8\" ?>\n";
}

void XmlWriter::CloseStartTag() {
  if (start_tag_open_) {
    buf_ += ">";
    start_tag_open_ = false;
  }
}

void XmlWriter::Indent() {
  if (indent_ <= 0) return;
  buf_ += "\n";
  buf_.append(open_.size() * static_cast<size_t>(indent_), ' ');
}

void XmlWriter::StartElement(std::string_view name) {
  CloseStartTag();
  if (!buf_.empty() && !open_.empty()) Indent();
  else if (!buf_.empty() && buf_.back() != '\n' && indent_ > 0) buf_ += "\n";
  buf_ += "<";
  buf_.append(name);
  open_.emplace_back(name);
  start_tag_open_ = true;
  just_wrote_text_ = false;
}

void XmlWriter::WriteAttribute(std::string_view name, std::string_view value) {
  WQE_CHECK(start_tag_open_);
  buf_ += " ";
  buf_.append(name);
  buf_ += "=\"";
  buf_ += EscapeXml(value);
  buf_ += "\"";
}

void XmlWriter::WriteText(std::string_view text) {
  WQE_CHECK(!open_.empty());
  CloseStartTag();
  buf_ += EscapeXml(text);
  just_wrote_text_ = true;
}

void XmlWriter::EndElement() {
  WQE_CHECK(!open_.empty());
  std::string name = open_.back();
  open_.pop_back();
  if (start_tag_open_) {
    buf_ += " />";
    start_tag_open_ = false;
  } else {
    if (!just_wrote_text_ && indent_ > 0) {
      buf_ += "\n";
      buf_.append(open_.size() * static_cast<size_t>(indent_), ' ');
    }
    buf_ += "</";
    buf_ += name;
    buf_ += ">";
  }
  just_wrote_text_ = false;
}

void XmlWriter::WriteElement(std::string_view name, std::string_view text) {
  StartElement(name);
  if (!text.empty()) WriteText(text);
  EndElement();
}

void XmlWriter::WriteEmptyElement(std::string_view name) {
  StartElement(name);
  EndElement();
}

std::string XmlWriter::TakeString() {
  WQE_CHECK(open_.empty());
  if (indent_ > 0 && !buf_.empty() && buf_.back() != '\n') buf_ += "\n";
  return std::move(buf_);
}

}  // namespace wqe::xml
