#pragma once

/// \file xml_parser.h
/// \brief Minimal non-validating XML pull parser.
///
/// Supports exactly what the ImageCLEF metadata files (paper Figure 2) and
/// MediaWiki dump pages need: elements, attributes, character data, entity
/// references, comments, CDATA, and processing instructions / declarations
/// (skipped).  No DTDs, namespaces are treated as part of the name.

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace wqe::xml {

/// \brief Kind of event produced by the pull parser.
enum class EventType {
  kStartElement,
  kEndElement,
  kCharacters,
  kEndDocument,
};

/// \brief One attribute on a start-element event.
struct Attribute {
  std::string name;
  std::string value;
};

/// \brief One pull event.
struct Event {
  EventType type = EventType::kEndDocument;
  std::string name;               ///< element name (start/end)
  std::string text;               ///< character data (kCharacters)
  std::vector<Attribute> attrs;   ///< attributes (kStartElement)
  bool self_closing = false;      ///< `<a/>`: start event flagged; a
                                  ///< matching end event is synthesized

  /// \brief Attribute lookup; returns empty string when absent.
  std::string_view Attr(std::string_view name) const;
  /// \brief True when the attribute is present.
  bool HasAttr(std::string_view name) const;
};

/// \brief Pull parser over an in-memory document.
///
/// Typical loop:
/// \code
///   PullParser p(doc);
///   for (;;) {
///     WQE_ASSIGN_OR_RETURN(Event ev, p.Next());
///     if (ev.type == EventType::kEndDocument) break;
///     ...
///   }
/// \endcode
class PullParser {
 public:
  explicit PullParser(std::string_view input) : input_(input) {}

  /// \brief Produces the next event, or a ParseError status.
  Result<Event> Next();

  /// \brief Byte offset of the parse cursor (for error reporting).
  size_t offset() const { return pos_; }

  /// \brief Current element nesting depth.
  size_t depth() const { return open_.size(); }

  /// \brief Skips the remainder of the current element (the one whose start
  /// event was just returned), including all children.
  Status SkipElement();

  /// \brief Collects concatenated character data until the current element
  /// closes. Child elements' text is included; markup is dropped.
  Result<std::string> ReadElementText();

 private:
  Result<Event> ParseMarkup();
  Status SkipMisc(std::string_view open_mark, std::string_view close_mark);
  Result<std::string> DecodeEntities(std::string_view raw) const;

  std::string_view input_;
  size_t pos_ = 0;
  std::vector<std::string> open_;
  bool pending_end_ = false;       ///< self-closing end event pending
  std::string pending_end_name_;
  bool done_ = false;
};

/// \brief Decodes the five predefined XML entities plus numeric references.
Result<std::string> DecodeXmlEntities(std::string_view raw);

/// \brief Escapes text for use as XML character data or attribute values.
std::string EscapeXml(std::string_view raw);

}  // namespace wqe::xml
