#include "xml/xml_parser.h"

#include <cctype>

#include "common/macros.h"

namespace wqe::xml {

namespace {

bool IsNameStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
}

bool IsNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
         c == ':' || c == '-' || c == '.';
}

bool IsSpace(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r';
}

void AppendUtf8(std::string* out, uint32_t cp) {
  if (cp < 0x80) {
    out->push_back(static_cast<char>(cp));
  } else if (cp < 0x800) {
    out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else if (cp < 0x10000) {
    out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else {
    out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  }
}

}  // namespace

Result<std::string> DecodeXmlEntities(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  size_t i = 0;
  while (i < raw.size()) {
    char c = raw[i];
    if (c != '&') {
      out.push_back(c);
      ++i;
      continue;
    }
    size_t semi = raw.find(';', i + 1);
    if (semi == std::string_view::npos || semi - i > 12) {
      return Status::ParseError("unterminated entity reference near offset ",
                                i);
    }
    std::string_view ent = raw.substr(i + 1, semi - i - 1);
    if (ent == "lt") {
      out.push_back('<');
    } else if (ent == "gt") {
      out.push_back('>');
    } else if (ent == "amp") {
      out.push_back('&');
    } else if (ent == "apos") {
      out.push_back('\'');
    } else if (ent == "quot") {
      out.push_back('"');
    } else if (!ent.empty() && ent[0] == '#') {
      uint32_t cp = 0;
      bool ok = ent.size() > 1;
      if (ent.size() > 2 && (ent[1] == 'x' || ent[1] == 'X')) {
        for (size_t k = 2; k < ent.size(); ++k) {
          char h = ent[k];
          uint32_t digit;
          if (h >= '0' && h <= '9') digit = h - '0';
          else if (h >= 'a' && h <= 'f') digit = 10 + h - 'a';
          else if (h >= 'A' && h <= 'F') digit = 10 + h - 'A';
          else { ok = false; break; }
          cp = cp * 16 + digit;
        }
      } else {
        for (size_t k = 1; k < ent.size(); ++k) {
          char d = ent[k];
          if (d < '0' || d > '9') { ok = false; break; }
          cp = cp * 10 + static_cast<uint32_t>(d - '0');
        }
      }
      if (!ok || cp == 0 || cp > 0x10FFFF) {
        return Status::ParseError("bad numeric character reference '&", ent,
                                  ";'");
      }
      AppendUtf8(&out, cp);
    } else {
      return Status::ParseError("unknown entity '&", ent, ";'");
    }
    i = semi + 1;
  }
  return out;
}

std::string EscapeXml(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    switch (c) {
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '&': out += "&amp;"; break;
      case '"': out += "&quot;"; break;
      case '\'': out += "&apos;"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

std::string_view Event::Attr(std::string_view name) const {
  for (const Attribute& a : attrs) {
    if (a.name == name) return a.value;
  }
  return {};
}

bool Event::HasAttr(std::string_view name) const {
  for (const Attribute& a : attrs) {
    if (a.name == name) return true;
  }
  return false;
}

Status PullParser::SkipMisc(std::string_view open_mark,
                            std::string_view close_mark) {
  // pos_ points at the start of open_mark.
  size_t end = input_.find(close_mark, pos_ + open_mark.size());
  if (end == std::string_view::npos) {
    return Status::ParseError("unterminated ", open_mark, " at offset ",
                              pos_);
  }
  pos_ = end + close_mark.size();
  return Status::OK();
}

Result<Event> PullParser::Next() {
  if (pending_end_) {
    pending_end_ = false;
    Event ev;
    ev.type = EventType::kEndElement;
    ev.name = pending_end_name_;
    return ev;
  }
  for (;;) {
    if (pos_ >= input_.size()) {
      if (!open_.empty()) {
        return Status::ParseError("document ended with unclosed element <",
                                  open_.back(), ">");
      }
      done_ = true;
      Event ev;
      ev.type = EventType::kEndDocument;
      return ev;
    }
    if (input_[pos_] == '<') {
      // Comments / PIs / declarations / CDATA are handled here; CDATA is
      // returned as characters, the rest are skipped silently.
      if (input_.compare(pos_, 4, "<!--") == 0) {
        WQE_RETURN_NOT_OK(SkipMisc("<!--", "-->"));
        continue;
      }
      if (input_.compare(pos_, 9, "<![CDATA[") == 0) {
        size_t end = input_.find("]]>", pos_ + 9);
        if (end == std::string_view::npos) {
          return Status::ParseError("unterminated CDATA at offset ", pos_);
        }
        Event ev;
        ev.type = EventType::kCharacters;
        ev.text = std::string(input_.substr(pos_ + 9, end - pos_ - 9));
        pos_ = end + 3;
        if (open_.empty()) continue;  // ignore top-level CDATA
        return ev;
      }
      if (input_.compare(pos_, 2, "<?") == 0) {
        WQE_RETURN_NOT_OK(SkipMisc("<?", "?>"));
        continue;
      }
      if (input_.compare(pos_, 2, "<!") == 0) {
        WQE_RETURN_NOT_OK(SkipMisc("<!", ">"));
        continue;
      }
      return ParseMarkup();
    }
    // Character data up to the next '<'.
    size_t lt = input_.find('<', pos_);
    if (lt == std::string_view::npos) lt = input_.size();
    std::string_view raw = input_.substr(pos_, lt - pos_);
    pos_ = lt;
    if (open_.empty()) {
      // Whitespace between top-level constructs is fine; anything else is
      // malformed.
      for (char c : raw) {
        if (!IsSpace(c)) {
          return Status::ParseError("character data outside root element");
        }
      }
      continue;
    }
    Event ev;
    ev.type = EventType::kCharacters;
    WQE_ASSIGN_OR_RETURN(ev.text, DecodeXmlEntities(raw));
    return ev;
  }
}

Result<Event> PullParser::ParseMarkup() {
  // pos_ points at '<' and this is a start or end tag.
  size_t i = pos_ + 1;
  bool closing = false;
  if (i < input_.size() && input_[i] == '/') {
    closing = true;
    ++i;
  }
  if (i >= input_.size() || !IsNameStart(input_[i])) {
    return Status::ParseError("malformed tag at offset ", pos_);
  }
  size_t name_start = i;
  while (i < input_.size() && IsNameChar(input_[i])) ++i;
  std::string name(input_.substr(name_start, i - name_start));

  Event ev;
  ev.name = name;

  if (closing) {
    while (i < input_.size() && IsSpace(input_[i])) ++i;
    if (i >= input_.size() || input_[i] != '>') {
      return Status::ParseError("malformed end tag </", name, ">");
    }
    pos_ = i + 1;
    if (open_.empty() || open_.back() != name) {
      return Status::ParseError("mismatched end tag </", name, ">",
                                open_.empty()
                                    ? std::string(" with no open element")
                                    : "; expected </" + open_.back() + ">");
    }
    open_.pop_back();
    ev.type = EventType::kEndElement;
    return ev;
  }

  ev.type = EventType::kStartElement;
  // Attributes.
  for (;;) {
    while (i < input_.size() && IsSpace(input_[i])) ++i;
    if (i >= input_.size()) {
      return Status::ParseError("unterminated start tag <", name, ">");
    }
    if (input_[i] == '>') {
      pos_ = i + 1;
      open_.push_back(name);
      return ev;
    }
    if (input_[i] == '/') {
      if (i + 1 >= input_.size() || input_[i + 1] != '>') {
        return Status::ParseError("malformed self-closing tag <", name, ">");
      }
      pos_ = i + 2;
      ev.self_closing = true;
      pending_end_ = true;
      pending_end_name_ = name;
      return ev;
    }
    if (!IsNameStart(input_[i])) {
      return Status::ParseError("bad attribute name in <", name,
                                "> at offset ", i);
    }
    size_t attr_start = i;
    while (i < input_.size() && IsNameChar(input_[i])) ++i;
    std::string attr_name(input_.substr(attr_start, i - attr_start));
    while (i < input_.size() && IsSpace(input_[i])) ++i;
    if (i >= input_.size() || input_[i] != '=') {
      return Status::ParseError("attribute '", attr_name, "' in <", name,
                                "> missing '='");
    }
    ++i;
    while (i < input_.size() && IsSpace(input_[i])) ++i;
    if (i >= input_.size() || (input_[i] != '"' && input_[i] != '\'')) {
      return Status::ParseError("attribute '", attr_name,
                                "' value must be quoted");
    }
    char quote = input_[i++];
    size_t val_start = i;
    while (i < input_.size() && input_[i] != quote) ++i;
    if (i >= input_.size()) {
      return Status::ParseError("unterminated attribute value for '",
                                attr_name, "'");
    }
    Attribute attr;
    attr.name = std::move(attr_name);
    WQE_ASSIGN_OR_RETURN(
        attr.value, DecodeXmlEntities(input_.substr(val_start, i - val_start)));
    ev.attrs.push_back(std::move(attr));
    ++i;  // closing quote
  }
}

Status PullParser::SkipElement() {
  // Called right after a start event was returned. For a self-closing tag
  // the synthetic end event is still pending; consume it.
  if (pending_end_) {
    pending_end_ = false;
    return Status::OK();
  }
  size_t target_depth = open_.size() - 1;
  for (;;) {
    WQE_ASSIGN_OR_RETURN(Event ev, Next());
    if (ev.type == EventType::kEndDocument) {
      return Status::ParseError("document ended while skipping element");
    }
    if (ev.type == EventType::kEndElement && open_.size() == target_depth) {
      return Status::OK();
    }
  }
}

Result<std::string> PullParser::ReadElementText() {
  std::string out;
  if (pending_end_) {
    pending_end_ = false;
    return out;  // self-closing element: empty text
  }
  size_t target_depth = open_.size() - 1;
  for (;;) {
    WQE_ASSIGN_OR_RETURN(Event ev, Next());
    if (ev.type == EventType::kEndDocument) {
      return Status::ParseError("document ended while reading element text");
    }
    if (ev.type == EventType::kCharacters) {
      out += ev.text;
    } else if (ev.type == EventType::kEndElement &&
               open_.size() == target_depth) {
      return out;
    }
  }
}

}  // namespace wqe::xml
