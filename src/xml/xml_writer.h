#pragma once

/// \file xml_writer.h
/// \brief Streaming XML writer with automatic escaping and indentation.
///
/// Used by the CLEF track generator (image metadata files, Figure 2 schema)
/// and the wiki dump writer; round-trips through `PullParser` in tests.

#include <string>
#include <string_view>
#include <vector>

namespace wqe::xml {

/// \brief Builds an XML document in memory.
class XmlWriter {
 public:
  /// \param indent spaces per nesting level; 0 writes a compact document.
  explicit XmlWriter(int indent = 2) : indent_(indent) {}

  /// \brief Writes the `<?xml ...?>` declaration (call first).
  void WriteDeclaration();

  /// \brief Opens an element; attributes are added with WriteAttribute
  /// before any content is written.
  void StartElement(std::string_view name);

  /// \brief Adds an attribute to the most recently started element.
  /// Must be called before text or child elements are written.
  void WriteAttribute(std::string_view name, std::string_view value);

  /// \brief Writes escaped character data inside the current element.
  void WriteText(std::string_view text);

  /// \brief Closes the current element.
  void EndElement();

  /// \brief Convenience: `<name>text</name>`.
  void WriteElement(std::string_view name, std::string_view text);

  /// \brief Convenience: empty element `<name />`.
  void WriteEmptyElement(std::string_view name);

  /// \brief The document so far. All elements must be closed.
  std::string TakeString();

  size_t depth() const { return open_.size(); }

 private:
  void CloseStartTag();
  void Indent();

  int indent_;
  std::string buf_;
  std::vector<std::string> open_;
  bool start_tag_open_ = false;   ///< '<name' emitted, '>' pending
  bool just_wrote_text_ = false;  ///< suppress indent before end tag
};

}  // namespace wqe::xml
