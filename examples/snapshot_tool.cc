/// \file snapshot_tool.cc
/// \brief Snapshot lifecycle CLI: build a knowledge base (synthetic, or
/// imported from a MediaWiki XML dump), write it to the versioned
/// on-disk snapshot format, then reload it and print the section table
/// — sizes, offsets, checksums — plus load timings for both the mmap
/// and the copy path.
///
/// Usage:
///   snapshot_tool [snapshot.bin]            synthetic knowledge base
///   snapshot_tool [snapshot.bin] dump.xml   import a MediaWiki dump
///
/// Default snapshot path: /tmp/wqe_snapshot.bin

#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>

#include "common/macros.h"
#include "common/stopwatch.h"
#include "snapshot/reader.h"
#include "snapshot/writer.h"
#include "wiki/dump.h"
#include "wiki/knowledge_base.h"
#include "wiki/synthetic.h"

using namespace wqe;

namespace {

wiki::KnowledgeBase BuildKb(int argc, char** argv) {
  if (argc > 2) {
    std::ifstream in(argv[2], std::ios::binary);
    WQE_CHECK(in.good());
    std::string xml((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
    wiki::DumpImportStats stats;
    auto kb = wiki::ParseDump(xml, &stats);
    WQE_CHECK_OK(kb.status());
    std::cout << "imported " << argv[2] << ": " << stats.pages
              << " pages -> " << stats.articles << " articles, "
              << stats.categories << " categories, " << stats.redirects
              << " redirects\n";
    return std::move(*kb);
  }
  wiki::SyntheticWikipediaOptions options;
  options.num_domains = 32;
  auto wiki = wiki::GenerateSyntheticWikipedia(options);
  WQE_CHECK_OK(wiki.status());
  std::cout << "generated synthetic wiki: " << wiki->kb.num_articles()
            << " articles, " << wiki->kb.num_categories()
            << " categories, " << wiki->kb.num_redirects()
            << " redirects\n";
  return std::move(wiki->kb);
}

void ReportLoad(const std::string& path, snapshot::LoadMode mode,
                const char* name) {
  snapshot::ReadOptions options;
  options.mode = mode;
  Stopwatch watch;
  auto kb = snapshot::LoadSnapshot(path, options);
  const double ms = watch.ElapsedMillis();
  WQE_CHECK_OK(kb.status());
  std::printf("reload (%s): %u nodes, %zu edges in %.2f ms\n", name,
              kb->csr().num_nodes(), kb->csr().num_edges(), ms);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string path = argc > 1 ? argv[1] : "/tmp/wqe_snapshot.bin";

  wiki::KnowledgeBase kb = BuildKb(argc, argv);
  kb.Freeze();

  Stopwatch write_watch;
  WQE_CHECK_OK(snapshot::WriteSnapshot(kb, path));
  std::printf("wrote %s in %.2f ms\n", path.c_str(),
              write_watch.ElapsedMillis());

  auto reader = snapshot::Reader::Open(path);
  WQE_CHECK_OK(reader.status());
  const snapshot::SnapshotInfo& info = reader->info();
  std::printf("format v%u, %zu bytes, file checksum %016llx\n",
              info.version, static_cast<size_t>(info.file_size),
              static_cast<unsigned long long>(info.file_checksum));
  std::printf("%u nodes, %zu edges, %zu sections:\n",
              static_cast<unsigned>(info.num_nodes),
              static_cast<size_t>(info.num_edges), info.sections.size());
  std::printf("  %-16s %6s %10s %12s %10s  %s\n", "section", "elem",
              "count", "bytes", "offset", "checksum");
  for (const snapshot::SectionInfo& s : info.sections) {
    std::printf("  %-16s %6u %10llu %12llu %10llu  %016llx\n", s.name,
                s.elem_size, static_cast<unsigned long long>(s.count),
                static_cast<unsigned long long>(s.size_bytes),
                static_cast<unsigned long long>(s.offset),
                static_cast<unsigned long long>(s.checksum));
  }

  ReportLoad(path, snapshot::LoadMode::kMmap, "mmap");
  ReportLoad(path, snapshot::LoadMode::kCopy, "copy");
  std::cout << "snapshot round trip OK.\n";
  return 0;
}
