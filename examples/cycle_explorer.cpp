/// \file cycle_explorer.cpp
/// \brief Domain example: explore the graph structure behind one query.
///
/// Reproduces the paper's §3 walk-through (Figures 3 and 4) on a generated
/// topic: builds the ground truth for one query, assembles its query
/// graph, reports component structure and TPR, and prints concrete cycles
/// of each length with their category ratio and extra-edge density.

#include <cstdio>
#include <iostream>

#include "analysis/paper_report.h"
#include "analysis/query_graph_analysis.h"
#include "common/macros.h"
#include "common/string_util.h"
#include "groundtruth/ground_truth.h"

using namespace wqe;

int main(int argc, char** argv) {
  size_t topic_index = argc > 1 ? static_cast<size_t>(std::atol(argv[1])) : 0;

  groundtruth::PipelineOptions options;
  options.wiki.num_domains = 24;
  options.track.num_topics = 12;
  options.track.background_docs = 400;
  auto pipeline_result = groundtruth::Pipeline::Build(options);
  WQE_CHECK_OK(pipeline_result.status());
  const groundtruth::Pipeline& p = **pipeline_result;
  if (topic_index >= p.num_topics()) topic_index = 0;

  groundtruth::GroundTruthBuilder builder(&p);
  auto entry = builder.BuildEntry(topic_index);
  WQE_CHECK_OK(entry.status());

  const wiki::KnowledgeBase& kb = p.kb();
  std::cout << "query " << entry->topic_id << ": \"" << entry->keywords
            << "\"\n";
  std::cout << "L(q.k):";
  for (auto a : entry->query_articles) {
    std::cout << " [" << kb.display_title(a) << "]";
  }
  std::cout << "\nX(q) expansion features (A'):";
  for (auto a : entry->xq.selected) {
    std::cout << " [" << kb.display_title(a) << "]";
  }
  std::cout << "\nO(X(q)) = " << entry->xq.quality << " vs unexpanded "
            << entry->xq.baseline_quality << "\n";

  // Build a one-topic ground truth so the analyzer can run on it.
  groundtruth::GroundTruth gt;
  gt.entries.push_back(std::move(*entry));
  analysis::QueryGraphAnalyzer analyzer(&p, &gt);
  auto a = analyzer.Analyze(0);
  WQE_CHECK_OK(a.status());

  std::cout << "\nquery graph: " << a->component.graph_size << " nodes, "
            << a->component.num_components << " components\n";
  std::printf(
      "largest CC: %.0f%% of nodes, %.0f%% categories, TPR %.2f, expansion "
      "ratio %.2f\n",
      100 * a->component.relative_size, 100 * a->component.category_ratio,
      a->component.tpr, a->component.expansion_ratio);

  for (uint32_t len = 2; len <= 5; ++len) {
    std::cout << "\ncycles of length " << len << ": "
              << a->CountCycles(len) << "\n";
    size_t shown = 0;
    for (const analysis::CycleRecord& r : a->cycles) {
      if (r.cycle.length() != len || shown >= 2) continue;
      ++shown;
      std::cout << "  (";
      for (size_t i = 0; i < r.cycle.nodes.size(); ++i) {
        graph::NodeId n = r.cycle.nodes[i];
        if (i > 0) std::cout << " - ";
        std::cout << (kb.graph().IsCategory(n) ? "c:" : "")
                  << kb.display_title(n);
      }
      std::printf(")  cat-ratio %.2f, density %.2f, contribution %+.1f\n",
                  r.metrics.category_ratio, r.metrics.extra_edge_density,
                  r.contribution);
    }
  }
  return 0;
}
