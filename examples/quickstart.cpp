/// \file quickstart.cpp
/// \brief Minimal tour of the public API.
///
/// Builds a small synthetic Wikipedia + ImageCLEF-style track, runs one
/// query through the unexpanded engine and through the cycle-based
/// expander, and prints what changed.  Start here.

#include <iostream>

#include "common/macros.h"
#include "expansion/baselines.h"
#include "expansion/cycle_expander.h"
#include "groundtruth/pipeline.h"
#include "ir/eval.h"

using namespace wqe;

int main() {
  // 1. Build the experiment context: a synthetic Wikipedia-shaped
  //    knowledge base, a generated image-retrieval track, and a retrieval
  //    engine indexed over the extracted metadata text.
  groundtruth::PipelineOptions options;
  options.wiki.num_domains = 16;
  options.track.num_topics = 8;
  options.track.background_docs = 200;
  auto pipeline_result = groundtruth::Pipeline::Build(options);
  WQE_CHECK_OK(pipeline_result.status());
  const groundtruth::Pipeline& pipeline = **pipeline_result;

  std::cout << "Knowledge base: " << pipeline.kb().num_articles()
            << " articles, " << pipeline.kb().num_categories()
            << " categories, " << pipeline.kb().num_redirects()
            << " redirects\n";
  std::cout << "Collection: " << pipeline.track().documents.size()
            << " image-metadata documents, " << pipeline.num_topics()
            << " topics\n\n";

  // 2. Take the first topic and run it unexpanded vs cycle-expanded.
  const clef::Topic& topic = pipeline.topic(0);
  std::cout << "Topic " << topic.id << ": \"" << topic.keywords << "\"\n";

  expansion::NoExpansion baseline(&pipeline.kb(), &pipeline.linker());
  expansion::CycleExpander expander(&pipeline.kb(), &pipeline.linker());

  for (const expansion::Expander* system :
       {static_cast<const expansion::Expander*>(&baseline),
        static_cast<const expansion::Expander*>(&expander)}) {
    auto expanded = system->Expand(topic.keywords);
    WQE_CHECK_OK(expanded.status());
    auto results = pipeline.engine().Search(expanded->query, 15);
    WQE_CHECK_OK(results.status());
    double o = ir::AverageTopRPrecision(*results, pipeline.relevant(0));
    double p10 = ir::PrecisionAtR(*results, pipeline.relevant(0), 10);

    std::cout << "\n[" << system->name() << "]\n";
    std::cout << "  features:";
    if (expanded->feature_articles.empty()) std::cout << " (none)";
    for (graph::NodeId f : expanded->feature_articles) {
      std::cout << " \"" << pipeline.kb().display_title(f) << "\"";
    }
    std::cout << "\n  O(A,D) = " << o << ", P@10 = " << p10 << "\n";
  }
  return 0;
}
