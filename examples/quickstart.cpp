/// \file quickstart.cpp
/// \brief Minimal tour of the public API: build, index, expand, query.
///
/// Builds an `api::Engine` over a small synthetic Wikipedia + ImageCLEF
/// style track (via `api::Testbed`), then serves one topic through two
/// registry strategies — the unexpanded baseline and the paper's
/// dense-cycle expansion — and prints what changed.  Start here.

#include <iostream>

#include "api/testbed.h"
#include "common/macros.h"
#include "ir/eval.h"

using namespace wqe;

int main() {
  // 1. Build the serving stack: a synthetic Wikipedia-shaped knowledge
  //    base, a generated image-retrieval track, and an Engine owning the
  //    KB, the entity linker, the retrieval index and the expander
  //    registry.  (To serve your own corpus, call api::Engine::Build with
  //    a KnowledgeBase and AddDocument/FinalizeIndex directly.)
  api::TestbedOptions options;
  options.wiki.num_domains = 16;
  options.track.num_topics = 8;
  options.track.background_docs = 200;
  auto bed_result = api::Testbed::Build(options);
  WQE_CHECK_OK(bed_result.status());
  api::Testbed& bed = **bed_result;
  const api::Engine& engine = bed.engine();

  std::cout << "Knowledge base: " << engine.kb().num_articles()
            << " articles, " << engine.kb().num_categories()
            << " categories, " << engine.kb().num_redirects()
            << " redirects\n";
  std::cout << "Collection: " << engine.search_engine().store().size()
            << " image-metadata documents, " << bed.num_topics()
            << " topics\n";
  std::cout << "Strategies:";
  for (const std::string& name : engine.registry().Names()) {
    std::cout << " " << name;
  }
  std::cout << "\n\n";

  // 2. Take the first topic and serve it unexpanded vs cycle-expanded.
  const clef::Topic& topic = bed.topic(0);
  std::cout << "Topic " << topic.id << ": \"" << topic.keywords << "\"\n";

  for (const char* strategy : {"no-expansion", "cycle"}) {
    api::QueryRequest request;
    request.keywords = topic.keywords;
    request.expander = strategy;
    auto response = engine.Query(request);
    WQE_CHECK_OK(response.status());
    double o = ir::AverageTopRPrecision(response->docs, bed.relevant(0));
    double p10 = ir::PrecisionAtR(response->docs, bed.relevant(0), 10);

    std::cout << "\n[" << response->expansion.expander << "]\n";
    std::cout << "  features:";
    if (response->expansion.feature_articles.empty()) std::cout << " (none)";
    for (graph::NodeId f : response->expansion.feature_articles) {
      std::cout << " \"" << engine.kb().display_title(f) << "\"";
    }
    std::cout << "\n  O(A,D) = " << o << ", P@10 = " << p10 << "  ("
              << response->total_ms << " ms)\n";
  }
  return 0;
}
