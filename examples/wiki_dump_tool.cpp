/// \file wiki_dump_tool.cpp
/// \brief Domain example: MediaWiki dump export / import.
///
/// Shows the real-data ingestion path: generates a synthetic knowledge
/// base, serializes it as a MediaWiki XML dump, re-imports the dump with
/// the parser that also accepts genuine Wikipedia exports, and verifies
/// the graph survives the round trip.
///
/// Usage: wiki_dump_tool [output.xml]   (default /tmp/wqe_dump.xml)

#include <fstream>
#include <iostream>

#include "common/macros.h"
#include "graph/cycle_metrics.h"
#include "wiki/dump.h"
#include "wiki/synthetic.h"

using namespace wqe;

int main(int argc, char** argv) {
  const char* path = argc > 1 ? argv[1] : "/tmp/wqe_dump.xml";

  wiki::SyntheticWikipediaOptions options;
  options.num_domains = 16;
  auto wiki = wiki::GenerateSyntheticWikipedia(options);
  WQE_CHECK_OK(wiki.status());
  std::cout << "generated: " << wiki->kb.num_articles() << " articles, "
            << wiki->kb.num_categories() << " categories, "
            << wiki->kb.num_redirects() << " redirects, "
            << wiki->kb.graph().num_edges() << " edges\n";
  std::cout << "reciprocal link-pair rate: "
            << graph::ReciprocalLinkRate(wiki->kb.Freeze())
            << " (Wikipedia per the paper: 0.1147)\n";

  // Export.
  std::string dump = wiki::WriteDump(wiki->kb);
  {
    std::ofstream out(path, std::ios::binary);
    WQE_CHECK(out.good());
    out << dump;
  }
  std::cout << "wrote " << dump.size() << " bytes of MediaWiki XML to "
            << path << "\n";

  // Import.
  std::ifstream in(path, std::ios::binary);
  WQE_CHECK(in.good());
  std::string loaded((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
  wiki::DumpImportStats stats;
  auto kb2 = wiki::ParseDump(loaded, &stats);
  WQE_CHECK_OK(kb2.status());

  std::cout << "re-imported: " << stats.pages << " pages → "
            << stats.articles << " articles, " << stats.categories
            << " categories, " << stats.redirects << " redirects, "
            << stats.links << " links, " << stats.belongs << " belongs, "
            << stats.inside << " inside (" << stats.dangling_links
            << " dangling)\n";

  WQE_CHECK(kb2->num_articles() == wiki->kb.num_articles());
  WQE_CHECK(kb2->graph().num_edges() == wiki->kb.graph().num_edges());
  std::cout << "round trip OK: graphs match.\n";
  return 0;
}
