/// \file image_search.cpp
/// \brief Domain example: image retrieval with query expansion.
///
/// Recreates the paper's motivating scenario — a user searches an image
/// collection with short keyword queries whose vocabulary does not match
/// the relevant images' metadata.  Runs every topic of a generated
/// ImageCLEF-style track through four expansion systems and reports
/// per-system retrieval quality, then shows one topic in detail.

#include <cstdio>
#include <iostream>

#include "common/macros.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "expansion/baselines.h"
#include "expansion/cycle_expander.h"
#include "expansion/evaluation.h"
#include "groundtruth/pipeline.h"
#include "ir/eval.h"

using namespace wqe;

int main() {
  groundtruth::PipelineOptions options;
  options.wiki.num_domains = 24;
  options.track.num_topics = 12;
  options.track.background_docs = 400;
  auto pipeline_result = groundtruth::Pipeline::Build(options);
  WQE_CHECK_OK(pipeline_result.status());
  const groundtruth::Pipeline& p = **pipeline_result;

  expansion::NoExpansion none(&p.kb(), &p.linker());
  expansion::DirectLinkExpansion direct(&p.kb(), &p.linker());
  expansion::CommunityExpansion community(&p.kb(), &p.linker());
  expansion::CycleExpander cycle(&p.kb(), &p.linker());

  TablePrinter table("image retrieval quality by expansion system");
  table.SetHeader({"system", "P@1", "P@10", "O (Eq. 1)"});
  for (const expansion::Expander* system :
       std::initializer_list<const expansion::Expander*>{
           &none, &direct, &community, &cycle}) {
    auto eval = expansion::EvaluateExpander(*system, p);
    WQE_CHECK_OK(eval.status());
    table.AddRow({eval->name, FormatDouble(eval->mean_precision[0], 3),
                  FormatDouble(eval->mean_precision[2], 3),
                  FormatDouble(eval->mean_o, 3)});
  }
  table.Print();

  // One topic in detail.
  const clef::Topic& topic = p.topic(0);
  std::cout << "\n--- topic " << topic.id << ": \"" << topic.keywords
            << "\" ---\n";
  auto expanded = cycle.Expand(topic.keywords);
  WQE_CHECK_OK(expanded.status());
  std::cout << "expansion features:";
  for (graph::NodeId f : expanded->feature_articles) {
    std::cout << " [" << p.kb().display_title(f) << "]";
  }
  std::cout << "\nINDRI query: " << expanded->query.ToString() << "\n";

  auto results = p.engine().Search(expanded->query, 10);
  WQE_CHECK_OK(results.status());
  std::cout << "\ntop-10 images:\n";
  for (const ir::ScoredDoc& sd : *results) {
    bool relevant = p.relevant(0).count(sd.doc) > 0;
    const ir::Document& doc = p.engine().store().Get(sd.doc);
    std::cout << (relevant ? "  [relevant]  " : "  [        ]  ") << doc.name
              << "  " << doc.text.substr(0, 60) << "...\n";
  }
  return 0;
}
