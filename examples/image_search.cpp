/// \file image_search.cpp
/// \brief Domain example: image retrieval with query expansion.
///
/// Recreates the paper's motivating scenario — a user searches an image
/// collection with short keyword queries whose vocabulary does not match
/// the relevant images' metadata.  Runs every topic of a generated
/// ImageCLEF-style track through every registered expansion strategy of
/// an `api::Engine` and reports per-system retrieval quality, then shows
/// one topic in detail.

#include <iostream>

#include "api/evaluation.h"
#include "api/testbed.h"
#include "common/macros.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "ir/eval.h"

using namespace wqe;

int main() {
  api::TestbedOptions options;
  options.wiki.num_domains = 24;
  options.track.num_topics = 12;
  options.track.background_docs = 400;
  auto bed_result = api::Testbed::Build(options);
  WQE_CHECK_OK(bed_result.status());
  api::Testbed& bed = **bed_result;
  const api::Engine& engine = bed.engine();
  const std::vector<api::EvalTopic> topics = bed.EvalTopics();

  TablePrinter table("image retrieval quality by expansion system");
  table.SetHeader({"system", "P@1", "P@10", "O (Eq. 1)"});
  for (const std::string& name : engine.registry().Names()) {
    auto eval = api::EvaluateSystem(engine, name, topics);
    WQE_CHECK_OK(eval.status());
    table.AddRow({eval->name, FormatDouble(eval->mean_precision[0], 3),
                  FormatDouble(eval->mean_precision[2], 3),
                  FormatDouble(eval->mean_o, 3)});
  }
  table.Print();

  // One topic in detail, served end-to-end through the facade.
  const clef::Topic& topic = bed.topic(0);
  std::cout << "\n--- topic " << topic.id << ": \"" << topic.keywords
            << "\" ---\n";
  api::QueryRequest request;
  request.keywords = topic.keywords;
  request.expander = "cycle";
  request.top_k = 10;
  auto response = engine.Query(request);
  WQE_CHECK_OK(response.status());
  std::cout << "expansion features:";
  for (graph::NodeId f : response->expansion.feature_articles) {
    std::cout << " [" << engine.kb().display_title(f) << "]";
  }
  std::cout << "\nINDRI query: " << response->expansion.query.ToString()
            << "\n";

  std::cout << "\ntop-10 images:\n";
  for (const ir::ScoredDoc& sd : response->docs) {
    bool relevant = bed.relevant(0).count(sd.doc) > 0;
    const ir::Document& doc = engine.search_engine().store().Get(sd.doc);
    std::cout << (relevant ? "  [relevant]  " : "  [        ]  ") << doc.name
              << "  " << doc.text.substr(0, 60) << "...\n";
  }
  return 0;
}
